"""End-to-end overlapping contexts (Section 3.4): accident during
congestion — both workloads run concurrently on the same partition."""

import pytest
from dataclasses import replace

from repro.linearroad.generator import LinearRoadConfig, generate_stream
from repro.linearroad.queries import (
    ACCIDENT,
    CLEAR,
    CONGESTION,
    build_traffic_model,
    segment_partitioner,
)
from repro.linearroad.simulator import SegmentInterval
from repro.runtime.engine import CaesarEngine


@pytest.fixture(scope="module")
def report():
    """Congestion holds [120, 480); an accident strikes inside it
    [240, 360) — the paper's motivating overlap.  The run ends with a clear
    phase so the minute-granular statistics can observe both terminations.
    """
    base = LinearRoadConfig(
        num_roads=1,
        segments_per_road=1,
        duration_minutes=10,
        cars_clear=8,
        cars_congested=16,
        cars_accident=16,
        seed=29,
    )
    config = replace(
        base,
        congestion_schedule=(SegmentInterval(0, 0, 0, 120, 480),),
        accident_schedule=(SegmentInterval(0, 0, 0, 240, 360),),
    )
    engine = CaesarEngine(
        build_traffic_model(min_cars=6),
        partition_by=segment_partitioner,
        retention=120,
    )
    return engine.run(generate_stream(config))


def occupies(window, t):
    return window.start <= t and (window.end is None or t < window.end)


class TestOverlap:
    def test_both_contexts_hold_simultaneously(self, report):
        windows = report.windows_by_partition[(0, 0, 0)]
        # probe the middle of the accident phase
        t = 320
        active = {w.context_name for w in windows if occupies(w, t)}
        assert CONGESTION in active
        assert ACCIDENT in active
        assert CLEAR not in active

    def test_accident_does_not_terminate_congestion(self, report):
        """Query 3's point (Section 3.4): initiating accident must leave
        the congestion window running."""
        windows = report.windows_by_partition[(0, 0, 0)]
        congestion_windows = [
            w for w in windows if w.context_name == CONGESTION
        ]
        # one uninterrupted congestion window spanning the accident
        assert len(congestion_windows) == 1
        accident_windows = [w for w in windows if w.context_name == ACCIDENT]
        assert len(accident_windows) == 1
        assert congestion_windows[0].start < accident_windows[0].start
        assert (
            accident_windows[0].end is not None
            and congestion_windows[0].end is not None
            and accident_windows[0].end < congestion_windows[0].end
        )

    def test_both_workloads_produce_during_overlap(self, report):
        windows = report.windows_by_partition[(0, 0, 0)]
        accident = next(w for w in windows if w.context_name == ACCIDENT)
        overlap_tolls = [
            e for e in report.outputs
            if e.type_name == "TollNotification"
            and accident.start <= e.timestamp < accident.end
        ]
        overlap_warnings = [
            e for e in report.outputs
            if e.type_name == "AccidentWarning"
            and accident.start <= e.timestamp < accident.end
        ]
        assert overlap_tolls, "toll workload suspended during the overlap"
        assert overlap_warnings, "accident workload missing during overlap"

    def test_default_restored_only_after_both_end(self, report):
        windows = report.windows_by_partition[(0, 0, 0)]
        congestion_end = next(
            w for w in windows if w.context_name == CONGESTION
        ).end
        clear_restorations = [
            w for w in windows
            if w.context_name == CLEAR and w.start > 0
        ]
        assert clear_restorations
        assert min(w.start for w in clear_restorations) >= congestion_end
