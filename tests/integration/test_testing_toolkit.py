"""Tests for the application testing toolkit (repro.testing)."""

import pytest

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.types import EventType
from repro.language import parse_query
from repro.testing import trace_model

READING = EventType.define("Reading", value="int", sec="int", zone="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value) PATTERN Reading r CONTEXT alert",
        name="alarm"))
    return model


def make_trace(values=(50, 150, 90, 130, 40), zone=0):
    events = [
        Event(READING, t * 10, {"value": v, "sec": t * 10, "zone": zone})
        for t, v in enumerate(values)
    ]
    return trace_model(build_model(), events)


class TestLookups:
    def test_contexts_at(self):
        trace = make_trace()
        assert trace.contexts_at(0) == ("normal",)
        assert trace.contexts_at(15) == ("alert",)
        assert trace.contexts_at(20) == ("normal",)

    def test_transitions(self):
        trace = make_trace()
        assert trace.transitions() == [
            ("normal", "alert"),
            ("alert", "normal"),
            ("normal", "alert"),
            ("alert", "normal"),
        ]

    def test_derived(self):
        trace = make_trace()
        assert [e["value"] for e in trace.derived("Alarm")] == [150, 130]
        assert trace.derived("Nothing") == []


class TestAssertions:
    def test_assert_context_active_passes(self):
        make_trace().assert_context_active("alert", at=12)

    def test_assert_context_active_fails_with_diagnostics(self):
        with pytest.raises(AssertionError, match="not active at t=0"):
            make_trace().assert_context_active("alert", at=0)

    def test_assert_context_inactive(self):
        trace = make_trace()
        trace.assert_context_inactive("alert", at=0)
        with pytest.raises(AssertionError, match="unexpectedly active"):
            trace.assert_context_inactive("alert", at=12)

    def test_assert_derived_exact(self):
        trace = make_trace()
        trace.assert_derived("Alarm", count=2)
        with pytest.raises(AssertionError, match="exactly 5"):
            trace.assert_derived("Alarm", count=5)

    def test_assert_derived_at_least(self):
        trace = make_trace()
        trace.assert_derived("Alarm", at_least=1)
        with pytest.raises(AssertionError, match="at least 10"):
            trace.assert_derived("Alarm", at_least=10)

    def test_assert_derived_default_nonzero(self):
        trace = make_trace()
        trace.assert_derived("Alarm")
        with pytest.raises(AssertionError, match="no 'Missing' events"):
            trace.assert_derived("Missing")

    def test_assert_nothing_derived(self):
        trace = make_trace(values=(10, 20, 30))
        trace.assert_nothing_derived("Alarm")
        with pytest.raises(AssertionError, match="expected no"):
            make_trace().assert_nothing_derived("Alarm")


class TestPartitioned:
    def test_partitioned_trace(self):
        events = []
        for t in range(4):
            events.append(
                Event(READING, t * 10,
                      {"value": 150 if t else 10, "sec": t * 10, "zone": 1})
            )
            events.append(
                Event(READING, t * 10,
                      {"value": 10, "sec": t * 10, "zone": 2})
            )
        trace = trace_model(
            build_model(), events, partition_by=lambda e: e["zone"]
        )
        trace.assert_context_active("alert", at=15, partition=1)
        trace.assert_context_inactive("alert", at=15, partition=2)
