"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDescribe:
    def test_describe_traffic(self, capsys):
        assert main(["describe-traffic"]) == 0
        out = capsys.readouterr().out
        assert "[congestion]" in out
        assert "derives TollNotification" in out

    def test_describe_pam(self, capsys):
        assert main(["describe-pam"]) == 0
        assert "[vigorous]" in capsys.readouterr().out

    def test_dot_traffic(self, capsys):
        assert main(["dot-traffic"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph traffic {")

    def test_dot_pam(self, capsys):
        assert main(["dot-pam"]) == 0
        assert "digraph pam" in capsys.readouterr().out


class TestRun:
    def test_run_traffic(self, capsys):
        code = main(
            ["run-traffic", "--roads", "1", "--segments", "2",
             "--minutes", "8", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events=" in out
        assert "outputs:" in out

    def test_run_traffic_baseline(self, capsys):
        code = main(
            ["run-traffic", "--segments", "1", "--minutes", "6", "--baseline"]
        )
        assert code == 0

    def test_run_pam(self, capsys):
        code = main(["run-pam", "--subjects", "2", "--minutes", "6"])
        assert code == 0
        assert "events=" in capsys.readouterr().out

    def test_validate_traffic(self, capsys):
        code = main(
            ["validate-traffic", "--segments", "1", "--minutes", "8"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "PASS" in out


class TestParse:
    def test_parse_valid_query(self, capsys):
        code = main(
            ["parse",
             "DERIVE Toll(p.vid, 5) PATTERN Car p WHERE p.speed > 40 "
             "CONTEXT congestion"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DERIVE Toll" in out
        assert "CW_congestion" in out  # the pushed-down plan is printed

    def test_parse_invalid_query(self, capsys):
        code = main(["parse", "SELECT * FROM events"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_command_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestStats:
    def test_human_table(self, capsys):
        code = main(
            ["stats", "--scenario", "traffic", "--segments", "2",
             "--minutes", "6"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events=" in out
        assert "== traffic ==" in out
        assert "caesar_events_total" in out
        assert "caesar_plan_seconds" in out  # stats runs in detailed mode

    def test_prometheus_format(self, capsys):
        code = main(
            ["stats", "--scenario", "pam", "--subjects", "2",
             "--minutes", "6", "--format", "prometheus"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE caesar_events_total counter" in out
        assert 'le="+Inf"' in out

    def test_json_format(self, capsys):
        import json

        code = main(
            ["stats", "--segments", "1", "--minutes", "6",
             "--format", "json"]
        )
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["metrics"]["caesar_batches_total"] > 0

    def test_trace_file_and_timeline(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "trace.json"
        code = main(
            ["stats", "--segments", "1", "--minutes", "6",
             "--trace", str(trace_file), "--timeline"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "partition" in captured.out  # the ASCII timeline
        assert str(trace_file) in captured.err
        document = json.loads(trace_file.read_text())
        assert document["traceEvents"]

    def test_backend_flag(self, capsys):
        code = main(
            ["stats", "--segments", "2", "--minutes", "6",
             "--backend", "thread"]
        )
        assert code == 0
        assert "caesar_events_total" in capsys.readouterr().out
