"""Failure injection and edge-case robustness of the full engine."""

import pytest

from repro.core.model import CaesarModel
from repro.errors import StreamOrderError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.engine import CaesarEngine

READING = EventType.define("Reading", value="int", sec="int")
MIXED = EventType.define("Mixed", label="str")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value) PATTERN Reading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value):
    return Event(READING, t, {"value": value, "sec": t})


class TestEdgeStreams:
    def test_empty_stream(self):
        report = CaesarEngine(build_model()).run(EventStream())
        assert report.events_processed == 0
        assert report.outputs == []
        assert report.max_latency == 0.0

    def test_single_event(self):
        report = CaesarEngine(build_model()).run(
            EventStream([reading(0, 500)])
        )
        assert report.outputs_by_type == {"Alarm": 1}

    def test_all_events_same_timestamp(self):
        events = [reading(5, v) for v in (150, 160, 170)]
        report = CaesarEngine(build_model()).run(EventStream(events))
        assert report.batches == 1
        # the first event raises the context; all three are processed in it
        assert report.outputs_by_type == {"Alarm": 3}

    def test_huge_timestamp_gaps(self):
        events = [reading(0, 150), reading(10**9, 160)]
        report = CaesarEngine(build_model()).run(EventStream(events))
        assert report.outputs_by_type["Alarm"] == 2

    def test_fractional_timestamps(self):
        events = [reading(0.5, 150), reading(1.25, 90), reading(2.75, 120)]
        report = CaesarEngine(build_model()).run(EventStream(events))
        assert report.outputs_by_type["Alarm"] == 2


class TestForeignAndMalformedEvents:
    def test_unknown_event_types_flow_through_harmlessly(self):
        events = [
            reading(0, 150),
            Event(MIXED, 1, {"label": "noise"}),
            reading(2, 160),
        ]
        report = CaesarEngine(build_model()).run(EventStream(events))
        assert report.outputs_by_type["Alarm"] == 2

    def test_missing_attributes_drop_from_predicates(self):
        """A Reading without `value` cannot satisfy the WHERE predicates —
        it is ignored rather than crashing the engine."""
        events = [
            Event(READING, 0, {"sec": 0}),  # malformed: no value
            reading(1, 150),
        ]
        report = CaesarEngine(build_model()).run(EventStream(events))
        assert report.outputs_by_type["Alarm"] == 1

    def test_derive_item_on_missing_attribute_drops_event(self):
        model = CaesarModel(default_context="d")
        model.add_query(parse_query(
            "DERIVE Out(r.nonexistent) PATTERN Reading r", name="q"))
        report = CaesarEngine(model).run(EventStream([reading(0, 1)]))
        assert report.outputs == []


class TestStreamContractViolations:
    def test_out_of_order_stream_construction_rejected(self):
        with pytest.raises(StreamOrderError):
            EventStream([reading(10, 1), reading(5, 1)])


class TestStateAccounting:
    def test_gc_reclaims_state_of_starved_patterns(self):
        """A pattern expires its own stale state while consuming; the
        garbage collector covers patterns whose input dries up."""
        model = CaesarModel(default_context="d")
        model.add_query(parse_query(
            "DERIVE Pair(a.sec, b.sec) PATTERN SEQ(Reading a, Marker b)",
            name="pairs"))
        engine = CaesarEngine(model, retention=50, gc_interval=50)
        # readings open partial matches; Marker events never come, and the
        # unrelated Mixed traffic keeps time moving without feeding the
        # pattern — only the GC can reclaim the stale partials
        events = [reading(t, t) for t in range(0, 50, 10)]
        events += [
            Event(MIXED, t, {"label": "noise"}) for t in range(50, 2000, 10)
        ]
        report = engine.run(EventStream(events))
        assert report.gc_collected >= 5

    def test_history_discard_counted(self):
        engine = CaesarEngine(build_model())
        values = [150, 50, 150, 50, 150, 50]
        events = [reading(t * 10, v) for t, v in enumerate(values)]
        report = engine.run(EventStream(events))
        # the alert context terminated multiple times
        assert report.history_discards >= 2

    def test_rerunning_engine_instance_continues_state(self):
        """An engine instance holds its partitions across run() calls —
        time must keep moving forward."""
        engine = CaesarEngine(build_model())
        engine.run(EventStream([reading(0, 150)]))
        report = engine.run(EventStream([reading(10, 160)]))
        # the alert context raised in the first run still holds
        assert report.outputs_by_type.get("Alarm") == 1


class TestLargeBatches:
    def test_thousand_event_batch(self):
        events = [reading(1, 150 + i % 10) for i in range(1000)]
        report = CaesarEngine(build_model()).run(EventStream(events))
        assert report.events_processed == 1000
        assert report.outputs_by_type["Alarm"] == 1000
