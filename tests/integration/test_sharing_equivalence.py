"""Property test: workload sharing is semantics-preserving.

Shared execution derives each match exactly once; non-shared execution
derives it once per user window covering it.  So for every derived event,
the non-shared multiplicity must equal the number of covering windows whose
workload contains the producing query — and deduplicating the non-shared
output must yield exactly the shared output.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import attr
from repro.algebra.pattern import EventMatch
from repro.core.queries import EventQuery, QueryAction
from repro.core.windows import WindowSpec
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.optimizer.sharing import (
    build_nonshared_workload,
    build_shared_workload,
)
from repro.runtime.engine import ScheduledWorkloadEngine

READING = EventType.define("Reading", value="int", sec="int")
OUT = EventType.define("Out", value="int", sec="int")


def make_query(threshold):
    return EventQuery(
        name=f"q{threshold}",
        action=QueryAction.DERIVE,
        pattern=EventMatch("Reading", "r"),
        where=attr("value", "r").gt(threshold),
        derive_type=OUT,
        derive_items=(
            ("value", attr("value", "r")),
            ("sec", attr("sec", "r")),
        ),
    )


@st.composite
def scenario(draw):
    window_count = draw(st.integers(min_value=1, max_value=5))
    specs = []
    thresholds = [0, 5, 10]
    for index in range(window_count):
        start = draw(st.integers(min_value=0, max_value=80))
        length = draw(st.integers(min_value=10, max_value=60))
        chosen = draw(
            st.sets(st.sampled_from(thresholds), min_size=1, max_size=3)
        )
        specs.append(
            WindowSpec(
                name=f"w{index}",
                start=start,
                end=start + length,
                queries=tuple(make_query(t) for t in sorted(chosen)),
            )
        )
    times = draw(
        st.lists(
            st.integers(min_value=0, max_value=150), min_size=0, max_size=40
        )
    )
    events = [
        Event(READING, t, {"value": (i * 7) % 20, "sec": t})
        for i, t in enumerate(sorted(times))
    ]
    return specs, events


def run(workload_builder, specs, events):
    engine = ScheduledWorkloadEngine(workload_builder(specs))
    return engine.run(EventStream(events))


def event_key(event):
    return (event["value"], event["sec"])


class TestSharingEquivalence:
    @given(scenario())
    @settings(max_examples=100, deadline=None)
    def test_shared_equals_deduplicated_nonshared(self, data):
        """Same derivation *set*; shared multiplicity counts each distinct
        query once, regardless of how many windows carry it."""
        specs, events = data
        shared = run(build_shared_workload, specs, events)
        nonshared = run(build_nonshared_workload, specs, events)
        shared_counts = Counter(event_key(e) for e in shared.outputs)
        nonshared_keys = {event_key(e) for e in nonshared.outputs}
        assert set(shared_counts) == nonshared_keys
        for event in events:
            t, value = event.timestamp, event["value"]
            distinct_satisfied = {
                query.signature()
                for spec in specs
                if spec.covers(t)
                for query in spec.queries
                if value > _threshold_of(query)
            }
            same_key = sum(
                1 for e in events
                if e.timestamp == t and e["value"] == value
            )
            assert shared_counts.get((value, t), 0) == (
                len(distinct_satisfied) * same_key
            )

    @given(scenario())
    @settings(max_examples=100, deadline=None)
    def test_nonshared_multiplicity_counts_covering_windows(self, data):
        specs, events = data
        nonshared = run(build_nonshared_workload, specs, events)
        counts = Counter(event_key(e) for e in nonshared.outputs)
        for event in events:
            t, value = event.timestamp, event["value"]
            expected = 0
            for spec in specs:
                if not spec.covers(t):
                    continue
                expected += sum(
                    1
                    for query in spec.queries
                    if value > _threshold_of(query)
                )
            actual = counts.get((value, t), 0)
            # several events may share (value, t); aggregate per key
            same_key = sum(
                1 for e in events
                if e.timestamp == t and e["value"] == value
            )
            assert actual == expected * same_key

    @given(scenario())
    @settings(max_examples=100, deadline=None)
    def test_shared_never_does_more_work(self, data):
        specs, events = data
        shared = run(build_shared_workload, specs, events)
        nonshared = run(build_nonshared_workload, specs, events)
        assert shared.cost_units <= nonshared.cost_units + 1e-9


def _threshold_of(query):
    # the query's WHERE is attr > Constant(threshold)
    return query.where.right.value
