"""Property-based end-to-end check: the context-aware engine and the
context-independent baseline derive identical outputs on identical input.

This is the global correctness claim behind the paper's entire evaluation —
the optimizations (push-down, routing, suspension) are semantics-preserving,
only the cost differs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.baseline import ContextIndependentEngine
from repro.runtime.engine import CaesarEngine

READING = EventType.define("Reading", value="int", sec="int", zone="int")


def build_model(threshold_up=100, threshold_down=100):
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_context("critical")
    model.add_query(
        parse_query(
            f"INITIATE CONTEXT alert PATTERN Reading r "
            f"WHERE r.value > {threshold_up} CONTEXT normal",
            name="raise_alert",
        )
    )
    model.add_query(
        parse_query(
            f"TERMINATE CONTEXT alert PATTERN Reading r "
            f"WHERE r.value <= {threshold_down} CONTEXT alert",
            name="clear_alert",
        )
    )
    model.add_query(
        parse_query(
            "INITIATE CONTEXT critical PATTERN Reading r "
            "WHERE r.value > 180 CONTEXT alert",
            name="raise_critical",
        )
    )
    model.add_query(
        parse_query(
            "TERMINATE CONTEXT critical PATTERN Reading r "
            "WHERE r.value <= 180 CONTEXT critical",
            name="clear_critical",
        )
    )
    model.add_query(
        parse_query(
            "DERIVE Alarm(r.value, r.sec) PATTERN Reading r CONTEXT alert",
            name="alarm",
        )
    )
    model.add_query(
        parse_query(
            "DERIVE Page(r.value, r.sec) PATTERN Reading r CONTEXT critical",
            name="page",
        )
    )
    model.add_query(
        parse_query(
            "DERIVE Pair(a.sec, b.sec) PATTERN SEQ(Reading a, Reading b) "
            "WHERE a.value = b.value CONTEXT alert",
            name="pairs",
        )
    )
    return model


def output_key(report):
    return sorted(
        (e.type_name, e.start_time, e.timestamp,
         str(sorted(e.payload.items())))
        for e in report.outputs
    )


value_lists = st.lists(
    st.integers(min_value=0, max_value=250), min_size=1, max_size=60
)


class TestOutputEquivalence:
    @given(value_lists)
    @settings(max_examples=40, deadline=None)
    def test_single_partition(self, values):
        stream_events = [
            Event(READING, t * 10, {"value": v, "sec": t * 10, "zone": 0})
            for t, v in enumerate(values)
        ]
        ca = CaesarEngine(build_model(), retention=200)
        ci = ContextIndependentEngine(build_model(), retention=200)
        ca_report = ca.run(EventStream(stream_events))
        ci_report = ci.run(EventStream(stream_events))
        assert output_key(ca_report) == output_key(ci_report)

    @given(value_lists, value_lists)
    @settings(max_examples=20, deadline=None)
    def test_partitioned(self, values_a, values_b):
        events = []
        for zone, values in ((1, values_a), (2, values_b)):
            for t, v in enumerate(values):
                events.append(
                    Event(READING, t * 10, {"value": v, "sec": t * 10, "zone": zone})
                )
        events.sort(key=lambda e: (e.timestamp, e.event_id))
        ca = CaesarEngine(
            build_model(), retention=200, partition_by=lambda e: e["zone"]
        )
        ci = ContextIndependentEngine(
            build_model(), retention=200, partition_by=lambda e: e["zone"]
        )
        ca_report = ca.run(EventStream(events))
        ci_report = ci.run(EventStream(events))
        assert output_key(ca_report) == output_key(ci_report)

    @given(value_lists)
    @settings(max_examples=25, deadline=None)
    def test_caesar_never_costs_more(self, values):
        stream_events = [
            Event(READING, t * 10, {"value": v, "sec": t * 10, "zone": 0})
            for t, v in enumerate(values)
        ]
        ca = CaesarEngine(build_model(), retention=200)
        ci = ContextIndependentEngine(build_model(), retention=200)
        ca_report = ca.run(EventStream(stream_events))
        ci_report = ci.run(EventStream(stream_events))
        # The context-aware engine's work is at most the baseline's, up to a
        # small bookkeeping delta: the two engines discard pattern state at
        # different instants (termination vs re-activation), which shifts a
        # few tenths of a cost unit of per-partial overhead between them.
        assert ca_report.cost_units <= ci_report.cost_units * 1.02 + 2.0

    @given(value_lists)
    @settings(max_examples=25, deadline=None)
    def test_windows_partition_the_timeline(self, values):
        """Per partition: the default context holds exactly when no user
        context does (with ``[start, end)`` occupancy semantics), and
        windows of one type never overlap windows of the same type."""
        stream_events = [
            Event(READING, t * 10, {"value": v, "sec": t * 10, "zone": 0})
            for t, v in enumerate(values)
        ]
        engine = CaesarEngine(build_model(), retention=200)
        report = engine.run(EventStream(stream_events))
        windows = report.windows_by_partition[None]

        def occupies(window, t):
            if t < window.start:
                return False
            return window.end is None or t < window.end

        horizon = len(values) * 10
        for t in range(0, horizon, 10):
            names = [w.context_name for w in windows if occupies(w, t)]
            user_active = any(n != "normal" for n in names)
            default_active = "normal" in names
            assert default_active == (not user_active), f"at t={t}: {names}"
            # one window of the same type at a time (Section 3.3)
            assert len(names) == len(set(names)), f"at t={t}: {names}"
