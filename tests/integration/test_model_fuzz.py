"""Model-level fuzzing: random well-formed models never crash the engine,
and the CA/CI equivalence holds across randomly generated context graphs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.baseline import ContextIndependentEngine
from repro.runtime.engine import CaesarEngine

READING = EventType.define("Reading", value="int", sec="int")

CONTEXT_NAMES = ("base", "c1", "c2", "c3")


@st.composite
def random_model(draw):
    """A random chain/graph of contexts with threshold transitions.

    Context i is entered when ``value`` crosses ``100 * (i + 1)`` and left
    below it — randomly via INITIATE/TERMINATE or SWITCH — plus a random
    number of DERIVE queries per context.
    """
    depth = draw(st.integers(min_value=1, max_value=3))
    model = CaesarModel(default_context="base")
    for index in range(depth):
        model.add_context(CONTEXT_NAMES[index + 1])
    for index in range(depth):
        source = CONTEXT_NAMES[index]
        target = CONTEXT_NAMES[index + 1]
        threshold = 100 * (index + 1)
        use_switch = index > 0 and draw(st.booleans())
        if use_switch:
            model.add_query(parse_query(
                f"SWITCH CONTEXT {target} PATTERN Reading r "
                f"WHERE r.value >= {threshold} CONTEXT {source}",
                name=f"up{index}"))
            if source != "base":
                model.add_query(parse_query(
                    f"SWITCH CONTEXT {source} PATTERN Reading r "
                    f"WHERE r.value < {threshold} CONTEXT {target}",
                    name=f"down{index}"))
            else:
                model.add_query(parse_query(
                    f"TERMINATE CONTEXT {target} PATTERN Reading r "
                    f"WHERE r.value < {threshold} CONTEXT {target}",
                    name=f"down{index}"))
        else:
            model.add_query(parse_query(
                f"INITIATE CONTEXT {target} PATTERN Reading r "
                f"WHERE r.value >= {threshold} CONTEXT {source}",
                name=f"up{index}"))
            model.add_query(parse_query(
                f"TERMINATE CONTEXT {target} PATTERN Reading r "
                f"WHERE r.value < {threshold} CONTEXT {target}",
                name=f"down{index}"))
        query_count = draw(st.integers(min_value=0, max_value=2))
        for q in range(query_count):
            model.add_query(parse_query(
                f"DERIVE Out{index}_{q}(r.value, r.sec) PATTERN Reading r "
                f"WHERE r.value > {q * 37} CONTEXT {target}",
                name=f"d{index}_{q}"))
    return model


values_strategy = st.lists(
    st.integers(min_value=0, max_value=400), min_size=1, max_size=50
)


def build_stream(values):
    return EventStream(
        Event(READING, t * 10, {"value": v, "sec": t * 10})
        for t, v in enumerate(values)
    )


def output_key(report):
    return sorted(
        (e.type_name, e.timestamp, str(sorted(e.payload.items())))
        for e in report.outputs
    )


class TestModelFuzz:
    @given(random_model(), values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_engine_never_crashes(self, model, values):
        report = CaesarEngine(model).run(build_stream(values))
        assert report.events_processed == len(values)

    @given(random_model(), values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_ca_ci_equivalence_on_random_models(self, model, values):
        ca = CaesarEngine(model).run(build_stream(values))
        ci = ContextIndependentEngine(model).run(build_stream(values))
        assert output_key(ca) == output_key(ci)

    @given(random_model(), values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_window_set_always_consistent(self, model, values):
        engine = CaesarEngine(model)
        engine.run(build_stream(values))
        store = engine.partition_store(None)
        open_names = {
            w.context_name for w in store.all_windows() if w.is_open
        }
        assert set(store.active_contexts()) == open_names
        # exactly the default is open iff no user context is
        if open_names == {"base"}:
            assert store.is_active("base")
        else:
            assert "base" not in open_names
