"""Miscellaneous coverage: error hierarchy, public exports, small helpers."""

import pytest

import repro
from repro import errors
from repro.algebra.operators import ExecutionContext, Operator, OperatorStats
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType
from repro.runtime.metrics import SegmentStats


class TestErrorHierarchy:
    def test_every_error_derives_from_caesar_error(self):
        error_classes = [
            value
            for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        for error_class in error_classes:
            assert issubclass(error_class, errors.CaesarError) or (
                error_class is errors.CaesarError
            )

    def test_lexer_error_carries_position(self):
        error = errors.LexerError("bad", position=5, line=2, column=3)
        assert error.position == 5
        assert error.line == 2
        assert error.column == 3
        assert "line 2" in str(error)

    def test_unknown_context_error(self):
        error = errors.UnknownContextError("ghost")
        assert error.context_name == "ghost"
        assert "ghost" in str(error)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackage_exports_resolve(self):
        import repro.algebra
        import repro.core
        import repro.events
        import repro.language
        import repro.optimizer
        import repro.runtime

        for module in (
            repro.algebra, repro.core, repro.events,
            repro.language, repro.optimizer, repro.runtime,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_every_module_imports(self):
        """Every module in the package imports cleanly."""
        import importlib
        import pathlib

        package_root = pathlib.Path(repro.__file__).parent
        for path in sorted(package_root.rglob("*.py")):
            relative = path.relative_to(package_root)
            parts = ("repro",) + relative.with_suffix("").parts
            if parts[-1] == "__init__":
                parts = parts[:-1]
            if parts[-1] == "__main__":
                continue  # executing it would run the CLI
            importlib.import_module(".".join(parts))


class TestOperatorBase:
    def test_default_hooks(self):
        op = Operator("noop")
        ctx = ExecutionContext(windows=ContextWindowStore([], "d"))
        assert op.suspends_pipeline(ctx) is False
        assert op.on_time_advance(5, ctx) == []
        assert op.expire_state_before(5) == 0
        op.reset_state()  # no-op, must not raise
        with pytest.raises(NotImplementedError):
            op.process([], ctx)
        assert "noop" in repr(op)

    def test_stats_merge_and_reset(self):
        a = OperatorStats(invocations=1, events_in=2, events_out=1,
                          cost_units=3.0, suspensions=1)
        b = OperatorStats(invocations=2, events_in=5, events_out=4,
                          cost_units=1.5)
        a.merge(b)
        assert a.invocations == 3
        assert a.events_in == 7
        assert a.cost_units == 4.5
        a.reset()
        assert a.invocations == 0
        assert a.cost_units == 0.0


class TestSegmentStatsHelper:
    def test_record_output(self):
        stats = SegmentStats(key=(0, 0, 1))
        stats.record_output("Toll")
        stats.record_output("Toll", 2)
        assert stats.outputs_by_type == {"Toll": 3}


class TestEngineIntrospection:
    def test_describe_plans(self):
        from repro.core.model import CaesarModel
        from repro.language import parse_query
        from repro.runtime.engine import CaesarEngine

        model = CaesarModel(default_context="normal")
        model.add_context("alert")
        model.add_query(parse_query(
            "INITIATE CONTEXT alert PATTERN A a CONTEXT normal", name="up"))
        model.add_query(parse_query(
            "DERIVE Out(a.n) PATTERN A a CONTEXT alert", name="q"))
        text = CaesarEngine(model).describe_plans()
        assert "Deriving plans:" in text
        assert "Processing plans:" in text
        assert "up@normal" in text
        assert "q@alert" in text

    def test_partition_store_access(self):
        from repro.core.model import CaesarModel
        from repro.runtime.engine import CaesarEngine

        engine = CaesarEngine(CaesarModel(default_context="d"))
        store = engine.partition_store(None)
        assert store.active_contexts() == ("d",)
        assert engine.partition_keys == (None,)
