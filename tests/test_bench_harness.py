"""Tests for the benchmark harness utilities (benchmarks/common.py).

The figure assertions stand on this harness, so its own behaviour is
tested: table rendering, series extraction, the calibration rule and the
monotonicity helper.
"""

import pytest

from benchmarks.common import (
    FigureTable,
    calibrate_seconds_per_cost_unit,
    monotonically_nondecreasing,
)


class TestFigureTable:
    def make_table(self):
        table = FigureTable("Figure X", "a test figure", "x")
        table.add(1, a=1.0, b=10.0)
        table.add(2, a=2.0, b=20.0)
        table.add(3, a=3.0)
        return table

    def test_series_extraction(self):
        table = self.make_table()
        assert table.series("a") == [1.0, 2.0, 3.0]
        assert table.series("b") == [10.0, 20.0]
        assert table.xs() == [1, 2, 3]

    def test_render_contains_everything(self):
        text = self.make_table().render()
        assert "Figure X" in text
        assert "a test figure" in text
        for cell in ("1.0000", "20.0000", "3.0000"):
            assert cell in text

    def test_render_handles_missing_cells(self):
        lines = self.make_table().render().splitlines()
        # the x=3 row has no `b` value; the row still renders
        assert any(line.startswith("3") for line in lines)

    def test_empty_table(self):
        table = FigureTable("Figure Y", "empty", "x")
        assert "(no data)" in table.render()

    def test_column_order_preserved(self):
        table = FigureTable("F", "t", "x")
        table.add(1, zulu=1.0, alpha=2.0)
        header = table.render().splitlines()[1]
        assert header.index("zulu") < header.index("alpha")


class TestCalibration:
    def test_basic_rule(self):
        # 1000 cost units over a 100 s stream at 1.2x capacity:
        # total service must be 120 s → 0.12 s per unit
        assert calibrate_seconds_per_cost_unit(
            1000, stream_seconds=100, utilization=1.2
        ) == pytest.approx(0.12)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError, match="no cost units"):
            calibrate_seconds_per_cost_unit(0, stream_seconds=100)

    def test_utilization_scales_linearly(self):
        low = calibrate_seconds_per_cost_unit(
            500, stream_seconds=60, utilization=0.5
        )
        high = calibrate_seconds_per_cost_unit(
            500, stream_seconds=60, utilization=1.5
        )
        assert high == pytest.approx(3 * low)


class TestMonotonicity:
    def test_increasing(self):
        assert monotonically_nondecreasing([1, 2, 3])

    def test_small_dips_within_slack(self):
        assert monotonically_nondecreasing([1.0, 0.99, 1.5], slack=1.05)

    def test_large_dip_fails(self):
        assert not monotonically_nondecreasing([2.0, 1.0])
