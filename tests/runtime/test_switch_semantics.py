"""Engine-level tests of SWITCH CONTEXT semantics (Section 3.4).

A context switch is the termination of the previous window plus the
initiation of the new one — two consecutive, non-overlapping windows with
no default-context flicker in between.
"""

import pytest

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.engine import CaesarEngine

READING = EventType.define("Reading", value="int", sec="int")


def build_model():
    """rest → low → high with SWITCH transitions between low and high."""
    model = CaesarModel(default_context="rest")
    model.add_context("low")
    model.add_context("high")
    model.add_query(parse_query(
        "INITIATE CONTEXT low PATTERN Reading r "
        "WHERE r.value >= 10 AND r.value < 100 CONTEXT rest", name="to_low"))
    model.add_query(parse_query(
        "SWITCH CONTEXT high PATTERN Reading r WHERE r.value >= 100 "
        "CONTEXT low", name="low_to_high"))
    model.add_query(parse_query(
        "SWITCH CONTEXT low PATTERN Reading r "
        "WHERE r.value >= 10 AND r.value < 100 CONTEXT high",
        name="high_to_low"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT low PATTERN Reading r WHERE r.value < 10 "
        "CONTEXT low", name="low_to_rest"))
    model.add_query(parse_query(
        "DERIVE LowEvent(r.sec) PATTERN Reading r CONTEXT low",
        name="low_q"))
    model.add_query(parse_query(
        "DERIVE HighEvent(r.sec) PATTERN Reading r CONTEXT high",
        name="high_q"))
    return model


def run(values):
    events = [
        Event(READING, t * 10, {"value": v, "sec": t * 10})
        for t, v in enumerate(values)
    ]
    return CaesarEngine(build_model()).run(EventStream(events))


class TestSwitch:
    def test_switch_produces_consecutive_windows(self):
        report = run([5, 50, 150, 50, 5])
        windows = report.windows_by_partition[None]
        spans = [(w.context_name, w.start, w.end) for w in windows]
        assert ("low", 10, 20) in spans
        assert ("high", 20, 30) in spans
        assert ("low", 30, 40) in spans

    def test_no_default_flicker_during_switch(self):
        report = run([5, 50, 150, 50, 5])
        windows = report.windows_by_partition[None]
        rest_windows = [w for w in windows if w.context_name == "rest"]
        # rest held only at the run's start and after the final terminate —
        # never between the switches at t=20 and t=30
        assert [w.start for w in rest_windows] == [0, 40]
        assert rest_windows[0].end == 10
        assert rest_windows[1].is_open

    def test_workloads_follow_the_switch(self):
        report = run([5, 50, 150, 50, 5])
        low_times = sorted(
            e.timestamp for e in report.outputs if e.type_name == "LowEvent"
        )
        high_times = sorted(
            e.timestamp for e in report.outputs if e.type_name == "HighEvent"
        )
        assert low_times == [10, 30]
        assert high_times == [20]

    def test_switch_chain(self):
        """Repeated oscillation keeps exactly one user window at a time."""
        report = run([50, 150, 50, 150, 50, 150])
        windows = report.windows_by_partition[None]
        for t in (0, 10, 20, 30, 40, 50):
            active = [
                w.context_name for w in windows
                if w.start <= t and (w.end is None or t < w.end)
            ]
            assert len(active) == 1, f"at t={t}: {active}"

    def test_switch_from_inactive_context_is_noop(self):
        """The high→low switch query never fires while high is inactive."""
        report = run([5, 5, 5])
        windows = report.windows_by_partition[None]
        assert all(w.context_name == "rest" for w in windows)
