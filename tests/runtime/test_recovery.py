"""Tests for checkpoint autosave and crash recovery by suffix replay."""

import json

import pytest

from repro.core.model import CaesarModel
from repro.errors import FatalEngineError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime import (
    CaesarEngine,
    EngineSession,
    RecoveryManager,
    SupervisedEngine,
    outputs_to_rows,
    report_to_dict,
)
from repro.testing import inject_plan_fault

READING = EventType.define("RecReading", value="int", sec="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN RecReading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN RecReading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    # stateful: partial SEQ matches must survive the checkpoint round trip
    model.add_query(parse_query(
        "DERIVE Pair(a.sec, b.sec) PATTERN SEQ(RecReading a, RecReading b) "
        "WHERE a.value = b.value CONTEXT alert", name="pairs"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value) PATTERN RecReading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value):
    return Event(READING, t, {"value": value, "sec": t})


VALUES = [50, 150, 170, 150, 90, 120, 120, 30, 140, 150, 20, 130, 130, 60]


def events():
    return [reading(t * 10, v) for t, v in enumerate(VALUES)]


def crash_and_collect(manager, crash_at):
    """Run a supervised engine until an injected crash; returns the outputs
    it managed to emit before dying."""
    engine = SupervisedEngine(build_model(), recovery=manager)
    inject_plan_fault(
        engine, "alert", plan_name="alarm", at_times={crash_at}, crash=True
    )
    session = EngineSession(engine)
    emitted = []
    with pytest.raises(FatalEngineError):
        for event in events():
            emitted.extend(session.feed([event]))
    return emitted


class TestDeterministicRecovery:
    @pytest.mark.parametrize("crash_at", [30, 60, 90, 120])
    def test_restore_plus_replay_is_byte_identical(self, crash_at):
        """Acceptance: crash at an arbitrary timestamp, restore the latest
        checkpoint, replay the suffix — the concatenated rows are
        byte-identical to the uninterrupted run."""
        reference = CaesarEngine(build_model()).run(EventStream(events()))
        reference_bytes = json.dumps(
            outputs_to_rows(reference), sort_keys=True
        )

        manager = RecoveryManager(interval=25)
        emitted = crash_and_collect(manager, crash_at)

        fresh = SupervisedEngine(build_model(), recovery=manager)
        watermark, replayed = manager.recover_and_replay(fresh, events())
        assert watermark is not None and watermark < crash_at

        reconstructed = [
            e for e in emitted if e.timestamp <= watermark
        ] + replayed
        assert json.dumps(
            outputs_to_rows(reconstructed), sort_keys=True
        ) == reference_bytes

    def test_recovery_without_checkpoint_replays_everything(self):
        manager = RecoveryManager(interval=25)
        fresh = SupervisedEngine(build_model(), recovery=manager)
        watermark, replayed = manager.recover_and_replay(fresh, events())
        assert watermark is None
        reference = CaesarEngine(build_model()).run(EventStream(events()))
        assert outputs_to_rows(replayed) == outputs_to_rows(reference.outputs)


class TestAutosave:
    def test_checkpoints_every_interval(self):
        manager = RecoveryManager(interval=40)
        engine = SupervisedEngine(build_model(), recovery=manager)
        engine.run(EventStream(events()))
        # batches at t=0,10,...,130; autosaves at 0, 40, 80, 120
        assert manager.checkpoints_taken == 4
        assert manager.watermark == 120

    def test_history_bound_keeps_newest(self):
        manager = RecoveryManager(interval=10, history=2)
        engine = SupervisedEngine(build_model(), recovery=manager)
        engine.run(EventStream(events()))
        assert manager.checkpoints_taken == len(VALUES)
        assert manager.stored_checkpoints == 2
        assert manager.watermark == 130

    def test_counters_reach_report(self):
        manager = RecoveryManager(interval=40)
        engine = SupervisedEngine(build_model(), recovery=manager)
        report = engine.run(EventStream(events()))
        supervision = report_to_dict(report)["supervision"]
        assert supervision["checkpoints_taken"] == 4
        assert supervision["recovery_replays"] == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="interval"):
            RecoveryManager(interval=0)
        with pytest.raises(ValueError, match="history"):
            RecoveryManager(interval=10, history=0)


class TestFallbackRestore:
    def test_corrupt_newest_falls_back_to_older(self):
        manager = RecoveryManager(interval=25)
        crash_and_collect(manager, crash_at=90)
        assert manager.stored_checkpoints >= 2
        newest_watermark = manager.watermark
        # corrupt the newest snapshot beyond restorability
        manager._checkpoints[-1] = (newest_watermark, {"version": 99})

        fresh = SupervisedEngine(build_model(), recovery=manager)
        watermark = manager.recover(fresh)
        assert watermark is not None
        assert watermark < newest_watermark
        assert manager.invalid_checkpoints == 1

        # the fallback checkpoint still satisfies the determinism contract
        replayed = manager.replay(fresh, events())
        reference = CaesarEngine(build_model()).run(EventStream(events()))
        suffix_reference = [
            e for e in reference.outputs if e.timestamp > watermark
        ]
        assert outputs_to_rows(replayed) == outputs_to_rows(suffix_reference)

    def test_all_corrupt_returns_none(self):
        manager = RecoveryManager(interval=25)
        crash_and_collect(manager, crash_at=90)
        stored = manager.stored_checkpoints
        manager._checkpoints = [
            (w, {"version": 99}) for w, _ in manager._checkpoints
        ]
        fresh = SupervisedEngine(build_model(), recovery=manager)
        assert manager.recover(fresh) is None
        assert manager.invalid_checkpoints == stored
        assert manager.recovery_replays == 0
