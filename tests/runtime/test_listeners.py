"""Tests for context transition listeners."""

import pytest

from repro.core.model import CaesarModel
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.engine import CaesarEngine

READING = EventType.define("Reading", value="int", sec="int", zone="int")


class TestStoreListeners:
    def make_store(self):
        store = ContextWindowStore(["alert"], "normal")
        log = []
        store.add_listener(
            lambda kind, window: log.append((kind, window.context_name))
        )
        return store, log

    def test_initiation_and_termination_fire(self):
        store, log = self.make_store()
        store.initiate("alert", 5)
        store.terminate("alert", 9)
        assert log == [
            ("initiated", "alert"),
            ("terminated", "normal"),  # default evicted
            ("terminated", "alert"),
            ("initiated", "normal"),  # default restored
        ]

    def test_noops_do_not_fire(self):
        store, log = self.make_store()
        store.initiate("alert", 5)
        log.clear()
        store.initiate("alert", 6)  # idempotent: no transition
        store.terminate("alert", 7)  # fires termination + default restore
        store.terminate("alert", 8)  # already closed: no transition
        assert log == [
            ("terminated", "alert"),
            ("initiated", "normal"),
        ]

    def test_remove_listener(self):
        store, log = self.make_store()
        listener = store._listeners[0]
        store.remove_listener(listener)
        store.initiate("alert", 5)
        assert log == []


class TestEngineCallback:
    def build_model(self):
        model = CaesarModel(default_context="normal")
        model.add_context("alert")
        model.add_query(parse_query(
            "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 100 "
            "CONTEXT normal", name="up"))
        model.add_query(parse_query(
            "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 100 "
            "CONTEXT alert", name="down"))
        return model

    def test_callback_receives_partition_and_window(self):
        transitions = []
        engine = CaesarEngine(
            self.build_model(),
            partition_by=lambda e: e["zone"],
            on_context_transition=lambda key, kind, window: transitions.append(
                (key, kind, window.context_name, window.start)
            ),
        )
        events = sorted(
            [
                Event(READING, 0, {"value": 50, "sec": 0, "zone": 1}),
                Event(READING, 10, {"value": 150, "sec": 10, "zone": 1}),
                Event(READING, 20, {"value": 50, "sec": 20, "zone": 1}),
            ],
            key=lambda e: e.timestamp,
        )
        engine.run(EventStream(events))
        alert_transitions = [
            t for t in transitions if t[2] == "alert"
        ]
        assert alert_transitions == [
            (1, "initiated", "alert", 10),
            (1, "terminated", "alert", 10),
        ]

    def test_no_callback_by_default(self):
        engine = CaesarEngine(self.build_model())
        report = engine.run(
            EventStream([Event(READING, 0, {"value": 500, "sec": 0, "zone": 0})])
        )
        assert report.events_processed == 1
