"""Tests for the per-context cost breakdown (suspension observability)."""

import pytest

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.baseline import ContextIndependentEngine
from repro.runtime.engine import CaesarEngine

READING = EventType.define("Reading", value="int", sec="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_context("never")  # declared but never activated
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value) PATTERN Reading r CONTEXT alert",
        name="alarm"))
    model.add_query(parse_query(
        "DERIVE Ghost(r.value) PATTERN Reading r CONTEXT never",
        name="ghost"))
    return model


def stream():
    values = [50, 150, 90, 130, 40]
    return EventStream(
        Event(READING, t * 10, {"value": v, "sec": t * 10})
        for t, v in enumerate(values)
    )


class TestCostByContext:
    def test_suspended_context_spends_nothing(self):
        report = CaesarEngine(build_model()).run(stream())
        assert report.cost_by_context["never"] == 0.0
        assert report.cost_by_context["alert"] > 0.0
        assert report.cost_by_context["normal"] > 0.0

    def test_breakdown_sums_to_total(self):
        report = CaesarEngine(build_model()).run(stream())
        assert sum(report.cost_by_context.values()) == pytest.approx(
            report.cost_units
        )

    def test_baseline_pays_for_the_dead_context(self):
        """The CI engine busy-waits even the never-activated workload."""
        report = ContextIndependentEngine(build_model()).run(stream())
        assert report.cost_by_context["never"] > 0.0

    def test_breakdown_exported(self):
        from repro.runtime.reporting import report_to_dict

        report = CaesarEngine(build_model()).run(stream())
        exported = report_to_dict(report)
        assert exported["cost_by_context"]["never"] == 0.0
