"""Half-open re-entry of the circuit breaker under stream-time regressions.

The breaker runs on *stream* time, and stream time is allowed to regress
across a half-open probe: under replay or reordered arrival, the probe
batch a quarantined plan receives can carry a timestamp before the
failure that originally opened the breaker.  The cooldown deadline must
never move backward on such a reopen, or the breaker would expire
immediately and flap open/half-open on every subsequent batch.
"""

import pytest

from repro.runtime.supervisor import BreakerState, CircuitBreaker


class TestHalfOpenReentry:
    def test_regressed_probe_failure_keeps_the_open_deadline(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=60)
        breaker.record_failure(100)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 100

        # cooldown expires → half-open, one probe admitted
        assert breaker.allow(160)
        assert breaker.state is BreakerState.HALF_OPEN

        # the probe fails at a *regressed* stream time (replay/reorder):
        # the breaker reopens but the deadline must not move backward
        breaker.record_failure(50)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 100

        # a moved-back deadline would admit this immediately (50 + 60 <= 110)
        assert not breaker.allow(110)
        assert breaker.state is BreakerState.OPEN

        # the original deadline still governs re-entry
        assert breaker.allow(160)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_repeated_regressions_never_flap(self):
        """Probe failures at ever-earlier stream times don't shorten the
        cooldown; each re-entry still waits the full window from the
        latest *forward* open."""
        breaker = CircuitBreaker(failure_threshold=1, cooldown=60)
        breaker.record_failure(100)
        for regressed in (90, 70, 50, 10):
            assert breaker.allow(160)
            assert breaker.state is BreakerState.HALF_OPEN
            breaker.record_failure(regressed)
            assert breaker.state is BreakerState.OPEN
            assert breaker.opened_at == 100
            # never admitted before the original deadline
            assert not breaker.allow(159)

    def test_forward_probe_failure_extends_the_deadline(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=60)
        breaker.record_failure(100)
        assert breaker.allow(160)
        breaker.record_failure(170)  # probe fails *later* — deadline moves
        assert breaker.opened_at == 170
        assert not breaker.allow(229)
        assert breaker.allow(230)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes_and_resets(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=60)
        breaker.record_failure(0)
        breaker.record_failure(1)
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow(61)
        breaker.record_success(62)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0
        # fully re-armed: it takes the full threshold to open again
        breaker.record_failure(63)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(64)
        assert breaker.state is BreakerState.OPEN

    def test_transition_log_records_the_reentry_cycle(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=60)
        breaker.record_failure(100)
        breaker.allow(160)
        breaker.record_failure(50)
        breaker.allow(160)
        breaker.record_success(161)
        assert [(f.value, t.value) for _, f, t in breaker.transitions] == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        assert breaker.ever_opened

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=-1)
