"""Tests for the bounded dead-letter queue."""

import pytest

from repro.events.event import Event
from repro.events.types import EventType
from repro.runtime import (
    DeadLetterQueue,
    REASON_LATE,
    REASON_SCHEMA,
    ReorderBuffer,
)

TICK = EventType.define("DlqTick", n="int")


def tick(t, n=0):
    return Event(TICK, t, {"n": n})


class TestQueueBasics:
    def test_put_records_event_reason_error_and_time(self):
        queue = DeadLetterQueue()
        event = tick(42)
        entry = queue.put(event, reason=REASON_SCHEMA, error=ValueError("bad"))
        assert entry.event is event
        assert entry.reason == REASON_SCHEMA
        assert entry.error == "bad"
        assert entry.timestamp == 42  # defaults to the event's own time
        explicit = queue.put(event, reason=REASON_SCHEMA, timestamp=99)
        assert explicit.timestamp == 99

    def test_entries_filtered_by_reason(self):
        queue = DeadLetterQueue()
        queue.put(tick(1), reason=REASON_SCHEMA)
        queue.put(tick(2), reason=REASON_LATE)
        queue.put(tick(3), reason=REASON_SCHEMA)
        assert [e.event.timestamp for e in queue.entries(reason=REASON_SCHEMA)] \
            == [1, 3]
        assert len(queue.entries()) == 3
        assert len(queue) == 3

    def test_capacity_evicts_oldest_and_counts_drops(self):
        queue = DeadLetterQueue(capacity=3)
        for t in range(5):
            queue.put(tick(t), reason=REASON_SCHEMA)
        assert [e.event.timestamp for e in queue.entries()] == [2, 3, 4]
        assert queue.dropped == 2
        # accounting never lies about loss: counters keep the full tally
        assert queue.counts_by_reason[REASON_SCHEMA] == 5
        assert queue.total == 5

    def test_drain_empties_but_keeps_counters(self):
        queue = DeadLetterQueue()
        queue.put(tick(1), reason=REASON_LATE)
        drained = queue.drain()
        assert len(drained) == 1
        assert len(queue) == 0
        assert queue.total == 1

    def test_summary(self):
        queue = DeadLetterQueue(capacity=2)
        for t in range(3):
            queue.put(tick(t), reason=REASON_LATE)
        assert queue.summary() == {
            "retained": 2,
            "dropped": 1,
            "dropped_by_reason": {REASON_LATE: 1},
            "by_reason": {REASON_LATE: 3},
        }

    def test_drops_are_attributed_to_the_evicted_reason(self):
        """Per-reason drop accounting follows the *evicted* entry's reason."""
        queue = DeadLetterQueue(capacity=2)
        queue.put(tick(0), reason=REASON_SCHEMA)
        queue.put(tick(1), reason=REASON_LATE)
        # evicts the schema entry, then the late one
        queue.put(tick(2), reason=REASON_LATE)
        queue.put(tick(3), reason=REASON_LATE)
        assert queue.dropped == 2
        assert queue.dropped_by_reason == {REASON_SCHEMA: 1, REASON_LATE: 1}

    def test_absorb_merges_worker_drop_accounting(self):
        """Absorbing a worker's entries merges its per-reason drop deltas."""
        queue = DeadLetterQueue(capacity=2)
        worker = DeadLetterQueue(capacity=1)
        for t in range(3):
            worker.put(tick(t), reason=REASON_LATE)
        queue.put(tick(10), reason=REASON_SCHEMA)
        queue.put(tick(11), reason=REASON_SCHEMA)
        queue.absorb(
            worker.entries(),
            dropped=worker.dropped,
            dropped_by_reason=worker.dropped_by_reason,
        )
        # worker evicted 2 late entries; absorbing its 1 retained entry
        # pushed this queue over capacity, evicting the schema entry
        assert queue.dropped == 3
        assert queue.dropped_by_reason == {REASON_LATE: 2, REASON_SCHEMA: 1}
        assert queue.counts_by_reason == {REASON_SCHEMA: 2, REASON_LATE: 1}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            DeadLetterQueue(capacity=0)


class TestReorderIntegration:
    def test_record_late_is_an_on_late_callback(self):
        """A reorder buffer wired to the queue diverts too-late events."""
        queue = DeadLetterQueue()
        buffer = ReorderBuffer(max_delay=5, on_late=queue.record_late)
        list(buffer.feed([tick(0), tick(50), tick(100)]))
        buffer.push(tick(3))  # older than the last release (t=50)
        assert buffer.late_events == 1
        late = queue.entries(reason=REASON_LATE)
        assert len(late) == 1
        assert late[0].event.timestamp == 3
        assert "reorder bound" in late[0].error
