"""Tests for the context-aware stream router (Section 6.2)."""

from repro.algebra.operators import ExecutionContext
from repro.algebra.plan import CombinedQueryPlan, QueryPlan
from repro.algebra.pattern import EventMatch, PatternOperator
from repro.algebra.relational_ops import Projection
from repro.algebra.expressions import attr
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType
from repro.runtime.router import ContextAwareStreamRouter

A = EventType.define("A", n="int")
B = EventType.define("B", n="int")
OUT = EventType.define("Out", n="int")


def make_plan(name, input_type="A"):
    return CombinedQueryPlan(
        [
            QueryPlan(
                [
                    PatternOperator(EventMatch(input_type, "a")),
                    Projection(OUT, [("n", attr("n", "a"))]),
                ],
                name=name,
                context_name=name,
            )
        ],
        name=f"combined-{name}",
        context_name=name,
    )


def setup_router(context_aware=True):
    store = ContextWindowStore(["c1", "c2"], "default")
    router = ContextAwareStreamRouter(
        {"c1": make_plan("c1"), "c2": make_plan("c2")},
        context_aware=context_aware,
    )
    return store, router


def batch(n=3):
    return [Event(A, 1, {"n": i}) for i in range(n)]


class TestContextAwareRouting:
    def test_only_active_context_plans_receive_events(self):
        store, router = setup_router()
        store.initiate("c1", 0)
        ctx = ExecutionContext(windows=store, now=1)
        outputs = router.route(batch(), store, ctx)
        assert len(outputs) == 3  # only c1's plan produced
        assert router.batches_routed == 1
        assert router.batches_suppressed == 1

    def test_nothing_routed_when_no_user_context_active(self):
        store, router = setup_router()
        ctx = ExecutionContext(windows=store, now=1)
        assert router.route(batch(), store, ctx) == []
        assert router.batches_suppressed == 2

    def test_multiple_active_contexts(self):
        store, router = setup_router()
        store.initiate("c1", 0)
        store.initiate("c2", 0)
        ctx = ExecutionContext(windows=store, now=1)
        outputs = router.route(batch(2), store, ctx)
        assert len(outputs) == 4  # both plans produced

    def test_cost_attribution(self):
        store, router = setup_router()
        store.initiate("c1", 0)
        ctx = ExecutionContext(windows=store, now=1)
        router.route(batch(), store, ctx)
        assert router.cost_units > 0
        # suppressed plan spent nothing
        assert router.plan_for("c2").total_cost_units() == 0


class TestContextIndependentRouting:
    def test_everything_routed(self):
        store, router = setup_router(context_aware=False)
        ctx = ExecutionContext(windows=store, now=1)
        outputs = router.route(batch(2), store, ctx)
        # both plans ran even though neither context is active
        assert len(outputs) == 4
        assert router.batches_suppressed == 0
        assert router.batches_routed == 2


class TestInterestSetRouting:
    """Active plans whose interest set is disjoint from the batch are skipped."""

    def setup_mixed_router(self, context_aware=True):
        # c1 consumes A events, c2 consumes B events
        store = ContextWindowStore(["c1", "c2"], "default")
        router = ContextAwareStreamRouter(
            {"c1": make_plan("c1", "A"), "c2": make_plan("c2", "B")},
            context_aware=context_aware,
        )
        return store, router

    def test_disjoint_plan_skipped(self):
        store, router = self.setup_mixed_router()
        store.initiate("c1", 0)
        store.initiate("c2", 0)
        ctx = ExecutionContext(windows=store, now=1)
        outputs = router.route(batch(3), store, ctx)  # A events only
        assert len(outputs) == 3  # c1's plan produced, c2's never ran
        assert router.batches_routed == 1
        assert router.batches_uninterested == 1
        assert router.batches_suppressed == 0
        # the skipped plan was not charged any cost units
        assert router.plan_for("c2").total_cost_units() == 0

    def test_uninterested_counter_accumulates(self):
        store, router = self.setup_mixed_router()
        store.initiate("c1", 0)
        store.initiate("c2", 0)
        ctx = ExecutionContext(windows=store, now=1)
        for _ in range(4):
            router.route(batch(1), store, ctx)
        assert router.batches_uninterested == 4
        assert router.batches_routed == 4

    def test_mixed_batch_reaches_both_plans(self):
        store, router = self.setup_mixed_router()
        store.initiate("c1", 0)
        store.initiate("c2", 0)
        ctx = ExecutionContext(windows=store, now=1)
        mixed = [Event(A, 1, {"n": 0}), Event(B, 1, {"n": 1})]
        outputs = router.route(mixed, store, ctx)
        assert len(outputs) == 2
        assert router.batches_routed == 2
        assert router.batches_uninterested == 0

    def test_context_suppression_wins_over_interest(self):
        # an inactive context counts as suppressed, not uninterested, even
        # when the batch would also have been disjoint with its interests
        store, router = self.setup_mixed_router()
        store.initiate("c1", 0)
        ctx = ExecutionContext(windows=store, now=1)
        router.route(batch(1), store, ctx)
        assert router.batches_suppressed == 1
        assert router.batches_uninterested == 0

    def test_baseline_delivers_every_batch_to_every_plan(self):
        # the context-independent baseline must not benefit from interest
        # routing: both plans run and are charged even for a disjoint batch
        store, router = self.setup_mixed_router(context_aware=False)
        ctx = ExecutionContext(windows=store, now=1)
        router.route(batch(2), store, ctx)  # A events; c2 only wants B
        assert router.batches_routed == 2
        assert router.batches_uninterested == 0
        # c2's plan was really invoked for the disjoint batch
        c2_pattern = router.plan_for("c2").plans[0].operators[0]
        assert c2_pattern.stats.invocations == 1


class TestIntrospection:
    def test_contexts_and_lookup(self):
        _, router = setup_router()
        assert set(router.contexts) == {"c1", "c2"}
        assert router.plan_for("c1") is not None
        assert router.plan_for("missing") is None
        assert len(router.all_plans()) == 2
