"""Tests for the context history store and the garbage collector."""

import pytest

from repro.algebra.expressions import attr
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import EventMatch, PatternOperator, Sequence
from repro.algebra.plan import CombinedQueryPlan, QueryPlan
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType
from repro.runtime.garbage import GarbageCollector
from repro.runtime.history import ContextHistory

A = EventType.define("A", n="int")
B = EventType.define("B", n="int")


def ctx():
    return ExecutionContext(windows=ContextWindowStore([], "d"), now=0)


def seq_plan():
    return QueryPlan(
        [PatternOperator(Sequence((EventMatch("A", "a"), EventMatch("B", "b"))))],
        name="seq",
    )


def ev(event_type, t):
    return Event(event_type, t, {"n": 0})


class TestContextHistory:
    def test_termination_discards_partial_matches(self):
        history = ContextHistory()
        plan = seq_plan()
        plan.execute([ev(A, 1)], ctx())
        assert plan.state_size() == 1
        history.on_context_terminated(plan)
        assert plan.state_size() == 0
        assert history.discards == 1

    def test_preserve_and_restore_across_boundary(self):
        """Partial matches survive a grouped-window boundary (Section 6.2)."""
        history = ContextHistory()
        plan = seq_plan()
        plan.execute([ev(A, 1)], ctx())
        history.preserve("w1", plan)
        plan.reset_state()
        assert history.restore("w1", plan) is True
        out = plan.execute([ev(B, 2)], ctx())
        assert len(out) == 1  # the partial match completed after restore

    def test_restore_unknown_key(self):
        history = ContextHistory()
        assert history.restore("nope", seq_plan()) is False

    def test_restore_consumes_snapshot(self):
        history = ContextHistory()
        plan = seq_plan()
        plan.execute([ev(A, 1)], ctx())
        history.preserve("w", plan)
        assert history.restore("w", plan)
        assert not history.restore("w", plan)

    def test_drop_expires_preserved_state(self):
        history = ContextHistory()
        plan = seq_plan()
        plan.execute([ev(A, 1)], ctx())
        history.preserve("w", plan)
        history.drop("w")
        assert history.held_keys == ()
        assert history.discards == 1


class TestGarbageCollector:
    def make_combined(self):
        plan = seq_plan()
        return plan, CombinedQueryPlan([plan], name="c")

    def test_collects_expired_state(self):
        plan, combined = self.make_combined()
        gc = GarbageCollector([combined], retention=10, interval=1)
        plan.execute([ev(A, 0)], ctx())
        freed = gc.collect(now=100)
        assert freed == 1
        assert plan.state_size() == 0

    def test_keeps_fresh_state(self):
        plan, combined = self.make_combined()
        gc = GarbageCollector([combined], retention=100, interval=1)
        plan.execute([ev(A, 0)], ctx())
        assert gc.collect(now=50) == 0
        assert plan.state_size() == 1

    def test_maybe_collect_respects_interval(self):
        plan, combined = self.make_combined()
        gc = GarbageCollector([combined], retention=10, interval=60)
        plan.execute([ev(A, 0)], ctx())
        gc.collect(now=0)
        assert gc.maybe_collect(now=30) == 0  # too soon
        assert gc.runs == 1
        gc.maybe_collect(now=100)
        assert gc.runs == 2

    def test_invalid_interval(self):
        with pytest.raises(ValueError, match="positive"):
            GarbageCollector([], interval=0)

    def test_collected_counter_accumulates(self):
        plan, combined = self.make_combined()
        gc = GarbageCollector([combined], retention=1, interval=1)
        plan.execute([ev(A, 0)], ctx())
        gc.collect(now=100)
        plan.execute([ev(A, 101)], ctx())
        gc.collect(now=200)
        assert gc.collected == 2


class TestGarbageCollectorArming:
    def test_first_observation_arms_instead_of_collecting(self):
        """A stream starting at a large timestamp (e.g. a replayed suffix)
        must not trigger an immediate collection on first sight."""
        plan = seq_plan()
        combined = CombinedQueryPlan([plan], name="c")
        gc = GarbageCollector([combined], retention=10, interval=60)
        plan.execute([ev(A, 99_000)], ctx())
        assert gc.maybe_collect(now=100_000) == 0
        assert gc.runs == 0
        assert plan.state_size() == 1  # armed, nothing freed

    def test_interval_counts_from_first_observation(self):
        plan = seq_plan()
        combined = CombinedQueryPlan([plan], name="c")
        gc = GarbageCollector([combined], retention=10, interval=60)
        gc.maybe_collect(now=100_000)  # arms
        plan.execute([ev(A, 100_010)], ctx())
        assert gc.maybe_collect(now=100_030) == 0  # < interval since arming
        assert gc.maybe_collect(now=100_060) == 1  # interval elapsed, expired
        assert gc.runs == 1
