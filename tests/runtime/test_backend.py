"""Tests for the sharded parallel execution backends.

The contract under test: whatever backend executes the stream
transactions, the report — outputs, windows, cost accounting, supervision
counters — is identical to a serial run, because outputs are merged in the
scheduler's deterministic transaction order and each partition is pinned to
one shard worker.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import CaesarModel
from repro.errors import RuntimeEngineError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime import (
    BACKENDS,
    CaesarEngine,
    DeadLetterQueue,
    ExecutionBackend,
    ProcessPoolBackend,
    REASON_PLAN_FAULT,
    SerialBackend,
    SupervisedEngine,
    ThreadPoolBackend,
    outputs_to_rows,
    report_to_dict,
    resolve_backend,
)
from repro.runtime.backend import BACKEND_ENV_VAR, default_worker_count
from repro.testing import InjectedFaultError, inject_plan_fault

READING = EventType.define("BkReading", value="int", seg="int", sec="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN BkReading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN BkReading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Norm(r.sec) PATTERN BkReading r CONTEXT normal",
        name="norm"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value) PATTERN BkReading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value, seg=0):
    return Event(READING, t, {"value": value, "seg": seg, "sec": t})


def by_segment(event):
    return event["seg"]


def multi_partition_stream(segments=8, steps=12):
    events = []
    for t in range(steps):
        for seg in range(segments):
            value = 150 if (t + seg) % 4 == 0 else 50
            events.append(reading(t * 10, value, seg=seg))
    return EventStream(events)


def run_with(backend, *, stream=None, model=None):
    engine = CaesarEngine(
        model if model is not None else build_model(),
        partition_by=by_segment,
        seconds_per_cost_unit=1e-6,
        backend=backend,
    )
    return engine.run(stream if stream is not None else multi_partition_stream())


def comparable(report):
    """Everything in the report except wall-clock, backend identity and
    transport diagnostics (which describe *how* events moved, not what the
    run computed — inherently backend-specific)."""
    d = report_to_dict(report)
    for key in ("wall_seconds", "throughput", "backend", "transport"):
        d.pop(key)
    return d


class TestResolveBackend:
    def test_instance_passes_through(self):
        backend = ThreadPoolBackend(max_workers=2)
        assert resolve_backend(backend) is backend

    def test_names_and_aliases(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("thread"), ThreadPoolBackend)
        assert isinstance(resolve_backend("threads"), ThreadPoolBackend)
        assert isinstance(resolve_backend("process"), ProcessPoolBackend)
        assert isinstance(resolve_backend("PROCESS"), ProcessPoolBackend)

    def test_none_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_none_consults_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
        assert isinstance(resolve_backend(None), ThreadPoolBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(RuntimeEngineError, match="unknown execution"):
            resolve_backend("gpu")

    def test_registry_names(self):
        assert set(BACKENDS) >= {"serial", "thread", "process"}

    def test_worker_count_bounds(self):
        assert 2 <= default_worker_count() <= 8
        with pytest.raises(ValueError, match="max_workers"):
            ThreadPoolBackend(max_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            ProcessPoolBackend(max_workers=0)


class TestThreadEquivalence:
    def test_identical_to_serial_on_multi_partition_stream(self):
        serial = run_with("serial")
        threaded = run_with(ThreadPoolBackend(max_workers=4))
        assert outputs_to_rows(threaded) == outputs_to_rows(serial)
        assert comparable(threaded) == comparable(serial)
        assert threaded.backend == "thread"
        assert serial.backend == "serial"

    def test_single_worker_shard(self):
        threaded = run_with(ThreadPoolBackend(max_workers=1))
        assert comparable(threaded) == comparable(run_with("serial"))

    def test_more_workers_than_partitions(self):
        stream = multi_partition_stream(segments=2)
        serial = run_with("serial", stream=stream)
        threaded = run_with(ThreadPoolBackend(max_workers=8), stream=stream)
        assert comparable(threaded) == comparable(serial)

    def test_engine_reusable_across_runs(self):
        engine = CaesarEngine(
            build_model(),
            partition_by=by_segment,
            seconds_per_cost_unit=1e-6,
            backend=ThreadPoolBackend(max_workers=4),
        )
        first = engine.run(multi_partition_stream())
        second = engine.run(multi_partition_stream())
        assert comparable(first) == comparable(second)

    def test_error_propagates_deterministically(self):
        engine = CaesarEngine(
            build_model(),
            partition_by=by_segment,
            backend=ThreadPoolBackend(max_workers=4),
        )
        inject_plan_fault(engine, "alert", at_times={50})
        with pytest.raises(InjectedFaultError, match="t=50"):
            engine.run(multi_partition_stream())

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(
            st.tuples(st.integers(0, 200), st.integers(0, 5)),
            min_size=1,
            max_size=40,
        )
    )
    def test_property_serial_thread_equivalence(self, values):
        events = [
            reading(t * 10, value, seg=seg)
            for t, (value, seg) in enumerate(values)
        ]
        serial = run_with("serial", stream=EventStream(events))
        threaded = run_with(
            ThreadPoolBackend(max_workers=3), stream=EventStream(events)
        )
        assert outputs_to_rows(threaded) == outputs_to_rows(serial)
        assert comparable(threaded) == comparable(serial)


fork_available = "fork" in __import__("multiprocessing").get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="process backend requires the fork start method"
)


@needs_fork
class TestProcessEquivalence:
    def test_identical_to_serial_on_multi_partition_stream(self):
        serial = run_with("serial")
        forked = run_with(ProcessPoolBackend(max_workers=2))
        assert outputs_to_rows(forked) == outputs_to_rows(serial)
        assert comparable(forked) == comparable(serial)
        assert forked.backend == "process"

    def test_rejects_recovery(self):
        from repro.runtime import RecoveryManager

        engine = SupervisedEngine(
            build_model(),
            partition_by=by_segment,
            recovery=RecoveryManager(interval=10),
            backend=ProcessPoolBackend(max_workers=2),
        )
        with pytest.raises(RuntimeEngineError, match="checkpoint autosave"):
            engine.run(multi_partition_stream())

    def test_rejects_context_transition_callbacks(self):
        engine = CaesarEngine(
            build_model(),
            partition_by=by_segment,
            on_context_transition=lambda *a: None,
            backend=ProcessPoolBackend(max_workers=2),
        )
        with pytest.raises(RuntimeEngineError, match="on_context_transition"):
            engine.run(multi_partition_stream())

    def test_worker_error_propagates(self):
        engine = CaesarEngine(
            build_model(),
            partition_by=by_segment,
            backend=ProcessPoolBackend(max_workers=2),
        )
        inject_plan_fault(engine, "alert", at_times={50})
        with pytest.raises(InjectedFaultError):
            engine.run(multi_partition_stream())


@needs_fork
class TestProcessPoolLifecycle:
    """The pool outlives a run: spawn once per engine, reuse, close()."""

    def test_pool_reused_across_consecutive_runs(self):
        backend = ProcessPoolBackend(max_workers=2)
        engine = CaesarEngine(
            build_model(),
            partition_by=by_segment,
            seconds_per_cost_unit=1e-6,
            backend=backend,
        )
        try:
            first = engine.run(multi_partition_stream())
            first_pids = backend.worker_pids
            assert len(first_pids) == 2
            second = engine.run(multi_partition_stream())
            assert backend.worker_pids == first_pids  # same workers, no refork
            assert comparable(second) == comparable(first)
            assert outputs_to_rows(second) == outputs_to_rows(first)
            assert comparable(first) == comparable(run_with("serial"))
        finally:
            engine.close()

    def test_close_is_idempotent_and_engine_stays_usable(self):
        backend = ProcessPoolBackend(max_workers=2)
        engine = CaesarEngine(
            build_model(),
            partition_by=by_segment,
            seconds_per_cost_unit=1e-6,
            backend=backend,
        )
        first = engine.run(multi_partition_stream())
        engine.close()
        assert backend.worker_pids == ()
        engine.close()  # idempotent
        try:
            again = engine.run(multi_partition_stream())  # respawns the pool
            assert comparable(again) == comparable(first)
        finally:
            engine.close()

    def test_failed_pool_is_scrapped(self):
        backend = ProcessPoolBackend(max_workers=2)
        engine = CaesarEngine(
            build_model(),
            partition_by=by_segment,
            backend=backend,
        )
        inject_plan_fault(engine, "alert", at_times={50})
        with pytest.raises(InjectedFaultError):
            engine.run(multi_partition_stream())
        assert backend.worker_pids == ()  # diverged workers must not linger

    def test_shared_memory_transport_is_the_default(self):
        backend = ProcessPoolBackend(max_workers=2)
        try:
            report = run_with(backend)
        finally:
            backend.close()
        assert report.batches_shm > 0
        assert report.batches_pickled_fallback == 0
        assert report.transport_bytes_out > 0
        assert report.transport_bytes_in > 0

    def test_tiny_ring_falls_back_to_pipe_pickling(self):
        serial = run_with("serial")
        backend = ProcessPoolBackend(max_workers=2, ring_bytes=16)
        try:
            report = run_with(backend)
        finally:
            backend.close()
        assert report.batches_shm == 0
        assert report.batches_pickled_fallback > 0
        # slower lane, identical answers
        assert comparable(report) == comparable(serial)
        assert outputs_to_rows(report) == outputs_to_rows(serial)

    def test_env_selected_backend_falls_back_for_incompatible_engine(
        self, monkeypatch
    ):
        # A fleet-wide CAESAR_BACKEND=process must not break engines that
        # are structurally serial; an *explicit* process backend still
        # raises (covered by TestProcessEquivalence).
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        engine = CaesarEngine(
            build_model(),
            partition_by=by_segment,
            seconds_per_cost_unit=1e-6,
            on_context_transition=lambda *a: None,
        )
        report = engine.run(multi_partition_stream())
        assert report.backend == "serial"
        assert comparable(report) == comparable(run_with("serial"))

    def test_workers_env_override(self, monkeypatch):
        from repro.runtime.backend import WORKERS_ENV_VAR

        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert default_worker_count() == 3
        monkeypatch.setenv(WORKERS_ENV_VAR, "0")
        with pytest.raises(RuntimeEngineError, match=WORKERS_ENV_VAR):
            default_worker_count()
        monkeypatch.setenv(WORKERS_ENV_VAR, "lots")
        with pytest.raises(RuntimeEngineError, match=WORKERS_ENV_VAR):
            default_worker_count()
        monkeypatch.delenv(WORKERS_ENV_VAR)
        assert default_worker_count() >= 2


class TestSupervisedParallel:
    def test_thread_backend_plan_faults_match_serial(self):
        def supervised(backend):
            engine = SupervisedEngine(
                build_model(),
                partition_by=by_segment,
                seconds_per_cost_unit=1e-6,
                failure_threshold=1,
                cooldown=40,
                backend=backend,
            )
            inject_plan_fault(engine, "alert", at_times={20, 30})
            return engine.run(multi_partition_stream())

        serial = supervised("serial")
        threaded = supervised(ThreadPoolBackend(max_workers=4))
        assert serial.plan_failures > 0
        assert comparable(threaded) == comparable(serial)

    @needs_fork
    def test_process_backend_absorbs_worker_dead_letters(self):
        def supervised(backend):
            engine = SupervisedEngine(
                build_model(),
                partition_by=by_segment,
                seconds_per_cost_unit=1e-6,
                failure_threshold=1,
                cooldown=40,
                backend=backend,
            )
            inject_plan_fault(engine, "alert", at_times={20, 30})
            return engine, engine.run(multi_partition_stream())

        serial_engine, serial = supervised("serial")
        forked_engine, forked = supervised(ProcessPoolBackend(max_workers=2))
        assert serial.plan_failures > 0
        assert comparable(forked) == comparable(serial)
        # the workers' dead-letter entries were absorbed into the parent
        assert forked_engine.dead_letters.total == serial_engine.dead_letters.total
        assert (
            forked_engine.dead_letters.counts_by_reason
            == serial_engine.dead_letters.counts_by_reason
        )


class TestLinearRoadEquivalence:
    """The acceptance bar: byte-identical reports on a Linear Road stream
    with at least 8 partitions (unidirectional road segments)."""

    @pytest.fixture(scope="class")
    def setup(self):
        from repro.linearroad.generator import LinearRoadConfig, generate_stream
        from repro.linearroad.queries import (
            build_traffic_model,
            segment_partitioner,
        )

        config = LinearRoadConfig(
            num_roads=2, segments_per_road=4, duration_minutes=6, seed=7
        )
        events = list(generate_stream(config))
        partitions = {segment_partitioner(e) for e in events}
        assert len(partitions) >= 8
        return build_traffic_model, segment_partitioner, events

    def _run(self, setup, backend):
        build, partitioner, events = setup
        engine = CaesarEngine(
            build(),
            partition_by=partitioner,
            seconds_per_cost_unit=1e-6,
            backend=backend,
        )
        return engine.run(EventStream(events))

    def test_thread_matches_serial(self, setup):
        serial = self._run(setup, "serial")
        threaded = self._run(setup, ThreadPoolBackend(max_workers=4))
        assert outputs_to_rows(threaded) == outputs_to_rows(serial)
        assert comparable(threaded) == comparable(serial)

    @needs_fork
    def test_process_matches_serial(self, setup):
        serial = self._run(setup, "serial")
        forked = self._run(setup, ProcessPoolBackend(max_workers=2))
        assert outputs_to_rows(forked) == outputs_to_rows(serial)
        assert comparable(forked) == comparable(serial)


class TestBackendReporting:
    def test_report_names_backend(self):
        assert run_with("serial").backend == "serial"
        assert report_to_dict(run_with("serial"))["backend"] == "serial"

    def test_environment_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
        engine = CaesarEngine(build_model(), partition_by=by_segment)
        assert isinstance(engine.backend, ThreadPoolBackend)

    def test_abstract_backend_refuses_execution(self):
        with pytest.raises(NotImplementedError):
            ExecutionBackend().execute(0, [], None)
