"""Tests for the latency model and win-ratio metrics (Section 7.1)."""

import pytest

from repro.runtime.metrics import LatencyTracker, ThroughputSample, win_ratio


class TestLatencyTracker:
    def test_idle_server_latency_is_service_time(self):
        tracker = LatencyTracker()
        assert tracker.record(arrival=10.0, service=0.5) == pytest.approx(0.5)

    def test_queueing_accumulates(self):
        """Back-to-back batches faster than the server can drain them."""
        tracker = LatencyTracker()
        tracker.record(arrival=0.0, service=2.0)  # finishes at 2
        latency = tracker.record(arrival=1.0, service=2.0)  # starts at 2
        assert latency == pytest.approx(3.0)

    def test_queue_drains_during_gaps(self):
        tracker = LatencyTracker()
        tracker.record(arrival=0.0, service=2.0)
        # long gap: the server is idle again
        latency = tracker.record(arrival=100.0, service=1.0)
        assert latency == pytest.approx(1.0)

    def test_max_and_mean(self):
        tracker = LatencyTracker()
        tracker.record(0.0, 1.0)
        tracker.record(10.0, 3.0)
        assert tracker.max_latency == pytest.approx(3.0)
        assert tracker.mean_latency == pytest.approx(2.0)
        assert tracker.batches == 2

    def test_saturation_grows_latency_linearly(self):
        """Arrival every 1s, service 2s: latency climbs without bound."""
        tracker = LatencyTracker()
        latencies = [
            tracker.record(arrival=float(t), service=2.0) for t in range(10)
        ]
        diffs = [b - a for a, b in zip(latencies, latencies[1:])]
        assert all(d == pytest.approx(1.0) for d in diffs)

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LatencyTracker().record(0.0, -1.0)

    def test_reset(self):
        tracker = LatencyTracker()
        tracker.record(0.0, 5.0)
        tracker.reset()
        assert tracker.max_latency == 0.0
        assert tracker.batches == 0
        assert tracker.record(0.0, 1.0) == pytest.approx(1.0)

    def test_total_service(self):
        tracker = LatencyTracker()
        tracker.record(0.0, 1.5)
        tracker.record(5.0, 2.5)
        assert tracker.total_service == pytest.approx(4.0)


class TestWinRatio:
    def test_basic(self):
        assert win_ratio(8.0, 1.0) == pytest.approx(8.0)

    def test_zero_caesar_latency(self):
        assert win_ratio(5.0, 0.0) == float("inf")
        assert win_ratio(0.0, 0.0) == 1.0


class TestThroughput:
    def test_events_per_second(self):
        assert ThroughputSample(1000, 2.0).events_per_second == 500.0

    def test_zero_seconds(self):
        assert ThroughputSample(10, 0.0).events_per_second == float("inf")
