"""Tests for supervised execution: fault isolation behind circuit breakers.

The acceptance tests of this layer are deterministic chaos tests: faults
are injected at chosen stream timestamps via :mod:`repro.testing`, so every
run exercises the exact same failure schedule.
"""

import pytest

from repro.core.model import CaesarModel
from repro.errors import FatalEngineError, RuntimeEngineError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime import (
    BreakerState,
    CaesarEngine,
    CircuitBreaker,
    DeadLetterQueue,
    EngineSession,
    REASON_PLAN_FAULT,
    REASON_QUARANTINED,
    REASON_SCHEMA,
    SupervisedEngine,
    outputs_to_rows,
    report_to_dict,
)
from repro.testing import (
    FaultInjector,
    FaultSpec,
    InjectedCrashError,
    InjectedFaultError,
    inject_plan_fault,
)

READING = EventType.define("SupReading", value="int", sec="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN SupReading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN SupReading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Norm(r.sec) PATTERN SupReading r CONTEXT normal",
        name="norm"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value) PATTERN SupReading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value):
    return Event(READING, t, {"value": value, "sec": t})


VALUES = [50, 150, 170, 150, 90, 120, 120, 30, 140, 150, 20, 130]


def stream():
    return EventStream([reading(t * 10, v) for t, v in enumerate(VALUES)])


def events():
    return [reading(t * 10, v) for t, v in enumerate(VALUES)]


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=60)
        breaker.record_failure(0)
        breaker.record_failure(10)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(20)
        assert breaker.state is BreakerState.OPEN
        assert breaker.ever_opened

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=60)
        breaker.record_failure(0)
        breaker.record_success(10)
        breaker.record_failure(20)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failures == 2

    def test_open_blocks_until_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=50)
        breaker.record_failure(100)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(120)
        assert not breaker.allow(149)
        # cooldown elapsed: half-open, one probe admitted
        assert breaker.allow(150)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=50)
        breaker.record_failure(0)
        assert breaker.allow(50)
        breaker.record_success(50)
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=50)
        breaker.record_failure(0)
        assert breaker.allow(50)
        breaker.record_failure(50)
        assert breaker.state is BreakerState.OPEN
        # cooldown restarts from the reopening
        assert not breaker.allow(60)
        assert breaker.allow(100)

    def test_transitions_recorded_with_stream_time(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10)
        breaker.record_failure(5)
        breaker.allow(15)
        breaker.record_success(15)
        assert breaker.transitions == [
            (5, BreakerState.CLOSED, BreakerState.OPEN),
            (15, BreakerState.OPEN, BreakerState.HALF_OPEN),
            (15, BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=-1)


class TestFaultIsolation:
    def test_faulty_plan_quarantined_others_unaffected(self):
        """Acceptance: one always-raising plan; the engine completes the
        stream, quarantines exactly that plan, and every other plan's
        outputs match the no-fault run."""
        baseline = CaesarEngine(build_model()).run(stream())
        baseline_norms = [
            e for e in baseline.outputs if e.type_name == "Norm"
        ]

        engine = SupervisedEngine(
            build_model(), failure_threshold=1, cooldown=1_000_000
        )
        inject_plan_fault(engine, "alert", plan_name="alarm")
        report = engine.run(stream())

        # the run completed and the healthy plan's outputs are intact
        assert outputs_to_rows(
            [e for e in report.outputs if e.type_name == "Norm"]
        ) == outputs_to_rows(baseline_norms)
        # nothing from the faulty plan
        assert not [e for e in report.outputs if e.type_name == "Alarm"]
        # exactly the faulty plan is quarantined
        assert engine.quarantined_plans() == ((None, "processing", "alert"),)
        assert report.plans_quarantined == 1
        assert report.plan_failures >= 1

    def test_no_faults_means_no_supervision_noise(self):
        engine = SupervisedEngine(build_model())
        report = engine.run(stream())
        baseline = CaesarEngine(build_model()).run(stream())
        assert outputs_to_rows(report.outputs) == outputs_to_rows(
            baseline.outputs
        )
        assert report.plan_failures == 0
        assert report.plans_quarantined == 0
        assert engine.dead_letters.total == 0

    def test_failure_events_dead_lettered(self):
        engine = SupervisedEngine(build_model(), failure_threshold=3)
        inject_plan_fault(engine, "alert", plan_name="alarm", at_times={10})
        engine.run(stream())
        faulted = engine.dead_letters.entries(reason=REASON_PLAN_FAULT)
        assert [entry.timestamp for entry in faulted] == [10]
        assert "injected fault" in faulted[0].error

    def test_quarantined_events_dead_lettered(self):
        engine = SupervisedEngine(
            build_model(), failure_threshold=1, cooldown=1_000_000
        )
        inject_plan_fault(engine, "alert", plan_name="alarm")
        engine.run(stream())
        quarantined = engine.dead_letters.entries(reason=REASON_QUARANTINED)
        assert quarantined, "events of the quarantined plan are diverted"
        for entry in quarantined:
            assert entry.event.type_name == "SupReading"
            assert "quarantined" in entry.error

    def test_breaker_recloses_after_cooldown_when_fault_clears(self):
        """A transient fault: breaker opens, cools down, probes, recloses
        — and the plan produces output again."""
        engine = SupervisedEngine(
            build_model(), failure_threshold=1, cooldown=20
        )
        inject_plan_fault(engine, "alert", plan_name="alarm", at_times={10})
        report = engine.run(stream())
        breaker = engine.breaker_for((None, "processing", "alert"))
        assert breaker.state is BreakerState.CLOSED
        assert engine.breaker_transition_counts() == {
            "closed->open": 1,
            "open->half_open": 1,
            "half_open->closed": 1,
        }
        # alarms resume after the probe succeeds
        assert [e for e in report.outputs if e.type_name == "Alarm"]

    def test_fatal_errors_escape_supervision(self):
        engine = SupervisedEngine(build_model())
        inject_plan_fault(
            engine, "alert", plan_name="alarm", at_times={30}, crash=True
        )
        with pytest.raises(FatalEngineError):
            engine.run(stream())

    def test_counters_flow_into_report_dict(self):
        engine = SupervisedEngine(
            build_model(), failure_threshold=1, cooldown=1_000_000
        )
        inject_plan_fault(engine, "alert", plan_name="alarm")
        report = engine.run(stream())
        supervision = report_to_dict(report)["supervision"]
        assert supervision["plan_failures"] == report.plan_failures > 0
        assert supervision["plans_quarantined"] == 1
        assert supervision["breaker_transitions"]["closed->open"] == 1
        assert supervision["dead_lettered"][REASON_QUARANTINED] > 0
        assert supervision["dead_letter_dropped"] == 0

    def test_session_close_carries_supervision_counters(self):
        engine = SupervisedEngine(
            build_model(), failure_threshold=1, cooldown=1_000_000
        )
        inject_plan_fault(engine, "alert", plan_name="alarm")
        session = EngineSession(engine)
        for event in events():
            session.feed([event])
        report = session.close()
        assert report.plans_quarantined == 1
        assert report.plan_failures > 0


class TestSchemaSupervision:
    def test_schema_violations_dead_lettered_not_fatal(self):
        # Event construction does not validate by default — exactly the
        # malformed-producer scenario the supervisor defends against.
        engine = SupervisedEngine(build_model())
        bad = Event(READING, 35, {"value": "not-an-int", "sec": 35})
        feed = events()
        feed.insert(4, bad)
        report = engine.run(EventStream(feed))

        violations = engine.dead_letters.entries(reason=REASON_SCHEMA)
        assert len(violations) == 1
        assert violations[0].event is bad
        assert "SupReading" in violations[0].error
        # the rest of the stream processed normally
        baseline = CaesarEngine(build_model()).run(stream())
        assert outputs_to_rows(report.outputs) == outputs_to_rows(
            baseline.outputs
        )

    def test_validation_can_be_disabled(self):
        engine = SupervisedEngine(build_model(), validate_schemas=False)
        bad = Event(READING, 35, {"value": "oops", "sec": 35})
        feed = events()
        feed.insert(4, bad)
        engine.run(EventStream(feed))
        assert engine.dead_letters.entries(reason=REASON_SCHEMA) == []


class TestFaultInjection:
    def test_fault_spec_triggering(self):
        spec = FaultSpec(at_times=frozenset({10}))
        assert spec.triggers([], 10)
        assert not spec.triggers([], 20)
        typed = FaultSpec(event_types=frozenset({"SupReading"}))
        assert typed.triggers([reading(0, 1)], 0)
        assert not typed.triggers([], 0)  # pure time advance: no trigger

    def test_injector_wraps_an_operator(self):
        from repro.algebra.operators import ExecutionContext, Operator

        class Passthrough(Operator):
            def process(self, batch, ctx):
                return batch

        inner = Passthrough("pass")
        injector = FaultInjector(inner, FaultSpec(at_times=frozenset({5})))
        ctx = ExecutionContext(windows=None, now=5)
        with pytest.raises(InjectedFaultError, match=r"t=5"):
            injector.process([reading(5, 1)], ctx)
        ctx_ok = ExecutionContext(windows=None, now=6)
        batch = [reading(6, 1)]
        assert injector.process(batch, ctx_ok) == batch
        assert injector.stats is inner.stats

    def test_crash_spec_raises_fatal(self):
        spec = FaultSpec(crash=True)
        with pytest.raises(InjectedCrashError):
            spec.fire(0)
        assert issubclass(InjectedCrashError, FatalEngineError)

    def test_injection_requires_fresh_engine(self):
        engine = SupervisedEngine(build_model())
        engine.run(stream())
        with pytest.raises(RuntimeEngineError, match="before the engine"):
            inject_plan_fault(engine, "alert")

    def test_injection_rejects_unknown_plan(self):
        engine = SupervisedEngine(build_model())
        with pytest.raises(RuntimeEngineError, match="no plan named"):
            inject_plan_fault(engine, "alert", plan_name="nonexistent")

    def test_injection_rejects_unknown_context(self):
        engine = SupervisedEngine(build_model())
        with pytest.raises(RuntimeEngineError, match="no processing plan"):
            inject_plan_fault(engine, "bogus")


class TestDeadLetterSharing:
    def test_external_queue_is_used(self):
        queue = DeadLetterQueue(capacity=8)
        engine = SupervisedEngine(
            build_model(),
            failure_threshold=1,
            cooldown=1_000_000,
            dead_letters=queue,
        )
        inject_plan_fault(engine, "alert", plan_name="alarm")
        engine.run(stream())
        assert queue.total > 0
        assert engine.dead_letters is queue


class TestFullyInvalidBatch:
    def test_entirely_invalid_batch_is_skipped_not_fatal(self):
        """Chaos test: a batch whose every event violates its schema is
        dead-lettered *before* distribution, leaving its timestamp empty —
        which the scheduler treats as a no-op, not a crash."""
        engine = SupervisedEngine(build_model())
        feed = events()
        poison = [
            Event(READING, 45, {"value": "bad", "sec": 45}),
            Event(READING, 45, {"value": None, "sec": 45}),
            Event(READING, 45, {"value": "worse", "sec": 45}),
        ]
        feed[5:5] = poison  # one whole batch at t=45, all invalid
        report = engine.run(EventStream(feed))

        assert len(engine.dead_letters.entries(reason=REASON_SCHEMA)) == 3
        # the empty timestamp still advanced time and counted as a batch
        assert report.batches == len(VALUES) + 1
        assert report.events_processed == len(VALUES) + 3
        # the surviving stream processed exactly as without the poison
        baseline = CaesarEngine(build_model()).run(stream())
        assert outputs_to_rows(report.outputs) == outputs_to_rows(
            baseline.outputs
        )

    def test_entirely_invalid_batch_in_session(self):
        engine = SupervisedEngine(build_model())
        session = EngineSession(engine)
        session.feed(events()[:5])
        outputs = session.feed(
            [Event(READING, 45, {"value": "bad", "sec": 45})]
        )
        assert outputs == []
        assert len(engine.dead_letters.entries(reason=REASON_SCHEMA)) == 1
        # the session keeps accepting later events
        session.feed(events()[5:])
        report = session.close()
        assert report.dead_lettered == {REASON_SCHEMA: 1}
