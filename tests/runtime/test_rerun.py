"""Regression tests for engine re-entrancy (run-to-run state bleed).

``CaesarEngine.run`` used to leave the previous run's partition runtimes —
window stores, partial matches, router cost counters — in place, so a
second ``run()`` on the same engine started from polluted state and
reported inflated costs and wrong windows.  Now every run (except the one
immediately after a checkpoint restore) starts from a clean slate.
"""

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime import (
    CaesarEngine,
    SupervisedEngine,
    capture_checkpoint,
    outputs_to_rows,
    report_to_dict,
    restore_checkpoint,
)
from repro.testing import inject_plan_fault

READING = EventType.define("RrReading", value="int", sec="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN RrReading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN RrReading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value) PATTERN RrReading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value):
    return Event(READING, t, {"value": value, "sec": t})


VALUES = [50, 150, 170, 90, 120, 30, 140, 20]


def stream():
    return EventStream([reading(t * 10, v) for t, v in enumerate(VALUES)])


def comparable(report):
    d = report_to_dict(report)
    d.pop("wall_seconds")
    d.pop("throughput")
    # Transport diagnostics legitimately differ between runs on a reused
    # process-backend pool: the first run ships event-type definitions in
    # batch headers, later runs reference the already-primed directory.
    d.pop("transport", None)
    return d


class TestRunReentrancy:
    def test_two_runs_of_same_stream_are_identical(self):
        engine = CaesarEngine(build_model(), seconds_per_cost_unit=1e-6)
        first = engine.run(stream())
        second = engine.run(stream())
        assert outputs_to_rows(second) == outputs_to_rows(first)
        assert comparable(second) == comparable(first)

    def test_second_run_does_not_accumulate_cost_or_windows(self):
        engine = CaesarEngine(build_model(), seconds_per_cost_unit=1e-6)
        first = engine.run(stream())
        second = engine.run(stream())
        assert second.cost_units == first.cost_units
        assert {
            key: len(windows)
            for key, windows in second.windows_by_partition.items()
        } == {
            key: len(windows)
            for key, windows in first.windows_by_partition.items()
        }

    def test_supervised_rerun_reports_identically(self):
        def run_twice():
            engine = SupervisedEngine(
                build_model(),
                seconds_per_cost_unit=1e-6,
                failure_threshold=1,
                cooldown=40,
            )
            inject_plan_fault(engine, "alert", at_times={20})
            return engine.run(stream()), engine.run(stream())

        first, second = run_twice()
        assert first.plan_failures > 0
        assert comparable(second) == comparable(first)
        # dead-letter counts are per-run deltas, not lifetime totals
        assert second.dead_lettered == first.dead_lettered

    def test_restore_checkpoint_preserves_state_for_next_run_only(self):
        engine = CaesarEngine(build_model(), seconds_per_cost_unit=1e-6)
        prefix = EventStream([reading(t * 10, v) for t, v in enumerate(VALUES[:4])])
        suffix_events = [
            reading((t + 4) * 10, v) for t, v in enumerate(VALUES[4:])
        ]
        full = engine.run(stream())

        engine2 = CaesarEngine(build_model(), seconds_per_cost_unit=1e-6)
        engine2.run(prefix)
        checkpoint = capture_checkpoint(engine2)

        engine3 = CaesarEngine(build_model(), seconds_per_cost_unit=1e-6)
        restore_checkpoint(engine3, checkpoint)
        resumed = engine3.run(EventStream(suffix_events))
        # the restored state survived exactly one run() call ...
        assert outputs_to_rows(resumed.outputs) == outputs_to_rows(
            full.outputs[
                len(CaesarEngine(build_model()).run(prefix).outputs):
            ]
        )
        # ... and the next run starts clean again
        fresh = engine3.run(stream())
        assert comparable(fresh) == comparable(full)
