"""Tests for the event distributor and per-partition queues (Section 6.1)."""

from repro.events.event import Event
from repro.events.types import EventType
from repro.runtime.queues import EventDistributor, single_partition

TICK = EventType.define("Tick", seg="int")


def tick(t, seg=0):
    return Event(TICK, t, {"seg": seg})


class TestSinglePartition:
    def test_default_partitioner(self):
        assert single_partition(tick(0)) is None

    def test_distribute_and_take(self):
        distributor = EventDistributor()
        distributor.distribute([tick(0), tick(1), tick(2)])
        assert distributor.progress == 2
        assert distributor.distributed == 3
        taken = distributor.take_until(None, 1)
        assert [e.timestamp for e in taken] == [0, 1]
        assert distributor.pending(None) == 1

    def test_take_from_unknown_partition(self):
        assert EventDistributor().take_until("nope", 10) == []


class TestPartitioned:
    def test_partitioning_by_key(self):
        distributor = EventDistributor(lambda e: e["seg"])
        distributor.distribute([tick(0, seg=1), tick(0, seg=2), tick(1, seg=1)])
        assert set(distributor.partitions) == {1, 2}
        assert distributor.pending(1) == 2
        assert distributor.pending(2) == 1

    def test_take_preserves_order_within_partition(self):
        distributor = EventDistributor(lambda e: e["seg"])
        distributor.distribute([tick(0, seg=1), tick(5, seg=1), tick(9, seg=1)])
        taken = distributor.take_until(1, 5)
        assert [e.timestamp for e in taken] == [0, 5]

    def test_total_pending(self):
        distributor = EventDistributor(lambda e: e["seg"])
        distributor.distribute([tick(0, seg=1), tick(0, seg=2)])
        assert distributor.total_pending() == 2
        distributor.take_until(1, 99)
        assert distributor.total_pending() == 1

    def test_progress_tracks_max_timestamp(self):
        distributor = EventDistributor(lambda e: e["seg"])
        assert distributor.progress == -1
        distributor.distribute([tick(7, seg=1)])
        assert distributor.progress == 7


class TestTakeExactly:
    def test_takes_only_requested_timestamp(self):
        distributor = EventDistributor()
        distributor.distribute([tick(5), tick(5), tick(9)])
        taken = distributor.take_exactly(None, 5)
        assert [e.timestamp for e in taken] == [5, 5]
        assert distributor.pending(None) == 1
        assert distributor.stranded_taken == 0

    def test_stranded_older_events_distinguished(self):
        """Events older than t at the queue head are returned (never
        silently stranded) but counted separately — they indicate a
        scheduler bug, not normal same-timestamp work."""
        distributor = EventDistributor()
        distributor.distribute([tick(1), tick(2), tick(5)])
        taken = distributor.take_exactly(None, 5)
        assert [e.timestamp for e in taken] == [1, 2, 5]
        assert distributor.stranded_taken == 2

    def test_newer_events_stay_queued(self):
        distributor = EventDistributor()
        distributor.distribute([tick(5), tick(7)])
        taken = distributor.take_exactly(None, 5)
        assert [e.timestamp for e in taken] == [5]
        assert distributor.pending(None) == 1


class TestThreadSafety:
    def test_concurrent_distribute_and_take(self):
        import threading

        distributor = EventDistributor(lambda e: e["seg"])
        errors = []

        def producer(seg):
            try:
                for t in range(200):
                    distributor.distribute([tick(t, seg=seg)])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def consumer(seg):
            try:
                for t in range(0, 200, 10):
                    distributor.take_until(seg, t)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=producer, args=(seg,)) for seg in range(4)
        ] + [
            threading.Thread(target=consumer, args=(seg,)) for seg in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # every event is either still pending or was taken; nothing lost
        remaining = distributor.total_pending()
        assert distributor.distributed == 800
        assert 0 <= remaining <= 800
