"""Tests for incremental sessions on the parallel execution backends.

``EngineSession`` drives the engine's configured backend exactly like
``run()``: worker shards see the same transactions, fan-in happens at
``close()``, and the pool survives across sessions on the same engine.
"""

import pytest

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime import (
    CaesarEngine,
    EngineSession,
    ProcessPoolBackend,
    ThreadPoolBackend,
    outputs_to_rows,
    report_to_dict,
)

READING = EventType.define("SbReading", value="int", seg="int", sec="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN SbReading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN SbReading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value, r.sec) PATTERN SbReading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value, seg=0):
    return Event(READING, t, {"value": value, "seg": seg, "sec": t})


def by_segment(event):
    return event["seg"]


def multi_partition_events(segments=4, steps=10):
    events = []
    for t in range(steps):
        for seg in range(segments):
            value = 150 if (t + seg) % 3 == 0 else 50
            events.append(reading(t * 10, value, seg=seg))
    return events


def comparable(report):
    d = report_to_dict(report)
    for key in ("wall_seconds", "throughput", "backend", "transport"):
        d.pop(key)
    return d


def session_report(backend, events, chunk=7):
    engine = CaesarEngine(
        build_model(),
        partition_by=by_segment,
        seconds_per_cost_unit=1e-6,
        backend=backend,
    )
    # chunk=7 deliberately misaligns with the 4-events-per-timestamp
    # stream; frontier mode keeps the split timestamp in one transaction
    session = EngineSession(engine, eager=False)
    for start in range(0, len(events), chunk):
        session.feed(events[start:start + chunk])
    report = session.close()
    engine.close()
    return report


def one_shot(events):
    return CaesarEngine(
        build_model(),
        partition_by=by_segment,
        seconds_per_cost_unit=1e-6,
    ).run(EventStream(events))


class TestThreadSession:
    def test_chunked_matches_one_shot(self):
        events = multi_partition_events()
        expected = one_shot(events)
        report = session_report(ThreadPoolBackend(max_workers=4), events)
        assert report.backend == "thread"
        assert outputs_to_rows(report) == outputs_to_rows(expected)
        assert comparable(report) == comparable(expected)

    def test_double_close_is_idempotent(self):
        session = EngineSession(CaesarEngine(
            build_model(),
            partition_by=by_segment,
            backend=ThreadPoolBackend(max_workers=2),
        ))
        session.feed(multi_partition_events())
        first = session.close()
        assert session.close() is first


fork_available = "fork" in __import__("multiprocessing").get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not fork_available, reason="process backend requires the fork start method"
)


@needs_fork
class TestProcessSession:
    def test_chunked_matches_one_shot_with_worker_fan_in(self):
        events = multi_partition_events()
        expected = one_shot(events)
        report = session_report(ProcessPoolBackend(max_workers=2), events)
        assert report.backend == "process"
        # fan-in at close(): worker-held windows and counters all arrive
        assert outputs_to_rows(report) == outputs_to_rows(expected)
        assert comparable(report) == comparable(expected)

    def test_pool_reused_across_sessions(self):
        backend = ProcessPoolBackend(max_workers=2)
        engine = CaesarEngine(
            build_model(),
            partition_by=by_segment,
            seconds_per_cost_unit=1e-6,
            backend=backend,
        )
        events = multi_partition_events()
        try:
            first_session = EngineSession(engine)
            first_session.feed(events)
            first = first_session.close()
            first_pids = backend.worker_pids
            assert len(first_pids) == 2
            second_session = EngineSession(engine)
            second_session.feed(events)
            second = second_session.close()
            assert backend.worker_pids == first_pids  # no refork
            assert comparable(second) == comparable(first)
        finally:
            engine.close()

    def test_double_close_is_idempotent(self):
        backend = ProcessPoolBackend(max_workers=2)
        engine = CaesarEngine(
            build_model(), partition_by=by_segment, backend=backend
        )
        try:
            session = EngineSession(engine)
            session.feed(multi_partition_events())
            first = session.close()
            assert session.close() is first
        finally:
            engine.close()
