"""Tests for the CAESAR engine (Section 6)."""

import pytest

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.engine import CaesarEngine, ScheduledWorkloadEngine
from repro.core.windows import WindowSpec
from repro.optimizer.sharing import build_shared_workload

READING = EventType.define("Reading", value="int", sec="int", zone="int")


def alert_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(
        parse_query(
            "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 100 "
            "CONTEXT normal",
            name="raise_alert",
        )
    )
    model.add_query(
        parse_query(
            "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 100 "
            "CONTEXT alert",
            name="clear_alert",
        )
    )
    model.add_query(
        parse_query(
            "DERIVE Alarm(r.value, r.sec) PATTERN Reading r CONTEXT alert",
            name="alarm",
        )
    )
    return model


def reading(t, value, zone=0):
    return Event(READING, t, {"value": value, "sec": t, "zone": zone})


def ramp_stream(zone=0):
    values = [50, 80, 120, 150, 90, 60, 130, 40]
    return EventStream(reading(i * 10, v, zone) for i, v in enumerate(values))


class TestContextDerivation:
    def test_windows_follow_the_data(self):
        engine = CaesarEngine(alert_model())
        report = engine.run(ramp_stream())
        windows = report.windows_by_partition[None]
        spans = [(w.context_name, w.start, w.end) for w in windows]
        assert ("alert", 20, 40) in spans
        assert ("alert", 60, 70) in spans

    def test_alarms_only_during_alert(self):
        engine = CaesarEngine(alert_model())
        report = engine.run(ramp_stream())
        alarm_values = sorted(e["value"] for e in report.outputs)
        assert alarm_values == [120, 130, 150]

    def test_derivation_precedes_processing_same_timestamp(self):
        """The batch that raises a context is processed within it."""
        engine = CaesarEngine(alert_model())
        report = engine.run(EventStream([reading(0, 500)]))
        assert len(report.outputs) == 1

    def test_termination_batch_not_processed_in_old_context(self):
        engine = CaesarEngine(alert_model())
        report = engine.run(
            EventStream([reading(0, 500), reading(10, 50)])
        )
        # the t=10 reading terminates the alert; no alarm derived for it
        assert [e["value"] for e in report.outputs] == [500]


class TestSuspension:
    def test_suspended_plans_do_no_work(self):
        engine = CaesarEngine(alert_model())
        report = engine.run(
            EventStream([reading(t, 10) for t in range(0, 100, 10)])
        )
        assert report.outputs == []
        assert report.suppressed_batches > 0

    def test_report_summary_fields(self):
        engine = CaesarEngine(alert_model(), seconds_per_cost_unit=1e-3)
        report = engine.run(ramp_stream())
        assert report.events_processed == 8
        assert report.batches == 8
        assert report.cost_units > 0
        assert report.max_latency >= report.mean_latency >= 0
        assert "events=8" in report.summary()
        assert report.throughput > 0


class TestPartitioning:
    def test_partitions_have_independent_contexts(self):
        engine = CaesarEngine(
            alert_model(), partition_by=lambda e: e["zone"]
        )
        events = sorted(
            [reading(0, 500, zone=1), reading(0, 50, zone=2),
             reading(10, 500, zone=1), reading(10, 50, zone=2)],
            key=lambda e: e.timestamp,
        )
        report = engine.run(EventStream(events))
        # only zone 1 ever entered the alert context
        assert all(e["value"] == 500 for e in report.outputs)
        assert len(report.outputs) == 2
        zone1_windows = report.windows_by_partition[1]
        zone2_windows = report.windows_by_partition[2]
        assert any(w.context_name == "alert" for w in zone1_windows)
        assert all(w.context_name == "normal" for w in zone2_windows)


class TestLatencyModes:
    def test_cost_based_latency_is_deterministic(self):
        reports = []
        for _ in range(2):
            engine = CaesarEngine(alert_model(), seconds_per_cost_unit=1e-3)
            reports.append(engine.run(ramp_stream()))
        assert reports[0].max_latency == reports[1].max_latency
        assert reports[0].cost_units == reports[1].cost_units

    def test_wall_clock_mode(self):
        engine = CaesarEngine(alert_model())
        report = engine.run(ramp_stream())
        assert report.max_latency >= 0


class TestScheduledWorkloadEngine:
    def make_workload(self):
        query = parse_query(
            "DERIVE Alarm(r.value) PATTERN Reading r WHERE r.value > 0",
            name="q",
        )
        specs = [WindowSpec("w", start=20, end=50, queries=(query,))]
        return build_shared_workload(specs)

    def test_units_active_only_inside_intervals(self):
        engine = ScheduledWorkloadEngine(self.make_workload())
        stream = EventStream(reading(t, t + 1) for t in range(0, 80, 10))
        report = engine.run(stream)
        derived_times = sorted(e.timestamp for e in report.outputs)
        assert derived_times == [20, 30, 40]

    def test_context_independent_mode_processes_everything(self):
        engine = ScheduledWorkloadEngine(
            self.make_workload(), context_aware=False
        )
        stream = EventStream(reading(t, t + 1) for t in range(0, 80, 10))
        report = engine.run(stream)
        assert len(report.outputs) == 8

    def test_state_reset_on_deactivation(self):
        query = parse_query(
            "DERIVE Pair(a.value, b.value) "
            "PATTERN SEQ(Reading a, Reading b) WHERE a.value = b.value",
            name="pairs",
        )
        specs = [
            WindowSpec("w1", start=0, end=15, queries=(query,)),
            WindowSpec("w2", start=30, end=60, queries=(query,)),
        ]
        engine = ScheduledWorkloadEngine(build_shared_workload(specs))
        # a=7 at t=10 (window 1); b=7 at t=40 (window 2) — the partial
        # match from window 1 must NOT pair with window 2's event
        stream = EventStream([reading(10, 7), reading(40, 7), reading(50, 7)])
        report = engine.run(stream)
        pairs = [
            (e.start_time, e.timestamp)
            for e in report.outputs
            if e.type_name == "Pair"
        ]
        assert pairs == [(40, 50)]
