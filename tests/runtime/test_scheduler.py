"""Tests for the time-driven stream-transaction scheduler (Section 6.2)."""

import pytest

from repro.errors import RuntimeEngineError
from repro.events.event import Event
from repro.events.types import EventType
from repro.runtime.queues import EventDistributor
from repro.runtime.scheduler import TimeDrivenScheduler

TICK = EventType.define("Tick", seg="int")


def tick(t, seg=0):
    return Event(TICK, t, {"seg": seg})


class TestScheduling:
    def test_one_transaction_per_partition_per_time(self):
        distributor = EventDistributor(lambda e: e["seg"])
        distributor.distribute([tick(1, seg=0), tick(1, seg=1), tick(1, seg=1)])
        scheduler = TimeDrivenScheduler(distributor)
        executed = []
        transactions = scheduler.run_time(1, executed.append)
        assert len(transactions) == 2
        assert {t.partition for t in transactions} == {0, 1}
        by_partition = {t.partition: len(t.events) for t in transactions}
        assert by_partition == {0: 1, 1: 2}
        assert all(t.committed for t in transactions)
        assert executed == transactions

    def test_times_must_increase(self):
        distributor = EventDistributor()
        distributor.distribute([tick(1), tick(2)])
        scheduler = TimeDrivenScheduler(distributor)
        scheduler.run_time(2, lambda t: None)
        with pytest.raises(RuntimeEngineError, match="after"):
            scheduler.run_time(1, lambda t: None)

    def test_negative_timestamps_schedulable(self):
        """Regression (found by the differential property suite): the
        last-scheduled sentinel was the number ``-1``, so a stream starting
        at t <= -1 crashed with a bogus misordering error."""
        distributor = EventDistributor()
        distributor.distribute([tick(-30), tick(-1)])
        scheduler = TimeDrivenScheduler(distributor)
        executed = []
        scheduler.run_time(-30, executed.append)
        scheduler.run_time(-1, executed.append)
        assert [t.timestamp for t in executed] == [-30, -1]
        with pytest.raises(RuntimeEngineError, match="after"):
            scheduler.run_time(-1, lambda t: None)

    def test_waits_for_distributor_progress(self):
        """The scheduler refuses to run ahead of the distributor
        (Section 6.2: wait until the distributor progress passes t)."""
        distributor = EventDistributor()
        distributor.distribute([tick(1)])
        scheduler = TimeDrivenScheduler(distributor)
        with pytest.raises(RuntimeEngineError, match="progress"):
            scheduler.run_time(5, lambda t: None)

    def test_empty_partitions_skipped(self):
        distributor = EventDistributor(lambda e: e["seg"])
        distributor.distribute([tick(1, seg=0)])
        scheduler = TimeDrivenScheduler(distributor)
        scheduler.run_time(1, lambda t: None)
        distributor.distribute([tick(2, seg=1)])
        transactions = scheduler.run_time(2, lambda t: None)
        # partition 0 has no events at t=2, so only one transaction forms
        assert [t.partition for t in transactions] == [1]

    def test_straggler_events_swept_into_next_transaction(self):
        distributor = EventDistributor()
        distributor.distribute([tick(1), tick(2)])
        scheduler = TimeDrivenScheduler(distributor)
        [transaction] = scheduler.run_time(2, lambda t: None)
        # both events (t<=2) are taken, never stranded
        assert [e.timestamp for e in transaction.events] == [1, 2]

    def test_execution_count(self):
        distributor = EventDistributor()
        distributor.distribute([tick(1)])
        scheduler = TimeDrivenScheduler(distributor)
        scheduler.run_time(1, lambda t: None)
        assert scheduler.transactions_executed == 1


class TestEmptyTimestamps:
    def test_empty_timestamp_is_noop_not_crash(self):
        """A timestamp with no distributed events anywhere is legitimate:
        supervised runs dead-letter whole batches before distribution."""
        distributor = EventDistributor()
        scheduler = TimeDrivenScheduler(distributor)
        assert scheduler.run_time(5, lambda t: None) == []
        assert scheduler.empty_timestamps == 1
        assert scheduler.transactions_executed == 0

    def test_time_still_advances_past_empty_timestamps(self):
        distributor = EventDistributor()
        scheduler = TimeDrivenScheduler(distributor)
        scheduler.run_time(5, lambda t: None)
        # revisiting the skipped time is still an ordering error
        with pytest.raises(RuntimeEngineError, match="after"):
            scheduler.run_time(5, lambda t: None)
        distributor.distribute([tick(10)])
        [transaction] = scheduler.run_time(10, lambda t: None)
        assert transaction.timestamp == 10

    def test_pending_events_still_require_progress(self):
        """Only a *completely drained* distributor makes a lagging
        timestamp a no-op; pending events mean a real scheduling error."""
        distributor = EventDistributor()
        distributor.distribute([tick(1)])
        scheduler = TimeDrivenScheduler(distributor)
        with pytest.raises(RuntimeEngineError, match="progress"):
            scheduler.run_time(5, lambda t: None)

    def test_collect_commit_split_matches_run_time(self):
        distributor = EventDistributor(lambda e: e["seg"])
        distributor.distribute([tick(1, seg=0), tick(1, seg=1)])
        scheduler = TimeDrivenScheduler(distributor)
        transactions = scheduler.collect(1)
        assert [t.partition for t in transactions] == [0, 1]
        assert not any(t.committed for t in transactions)
        scheduler.commit(transactions)
        assert all(t.committed for t in transactions)
        assert scheduler.transactions_executed == 2
