"""Engine-level trailing negation: WITHIN deadlines fire through the full
routing/scheduling stack (the PAM fall-detection shape)."""

import pytest

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.engine import CaesarEngine

REPORT = EventType.define(
    "Report", subject="int", spike="int", move="int", sec="int"
)


def build_model():
    """FallWarning: a spike with no movement within 15 s — only while the
    subject is in the rest context."""
    model = CaesarModel(default_context="rest")
    model.add_context("active")
    model.add_query(parse_query(
        "INITIATE CONTEXT active PATTERN Report r WHERE r.move > 5 "
        "CONTEXT rest", name="activate"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT active PATTERN Report r WHERE r.move = 0 "
        "CONTEXT active", name="deactivate"))
    model.add_query(parse_query(
        "DERIVE FallWarning(s.subject, s.sec) "
        "PATTERN SEQ(Report s, NOT Report m) "
        "WHERE s.spike > 20 AND m.subject = s.subject AND m.move > 2 "
        "WITHIN 15 CONTEXT rest",
        name="fall"))
    return model


def report(t, spike=0, move=0, subject=1):
    return Event(
        REPORT, t, {"subject": subject, "spike": spike, "move": move, "sec": t}
    )


class TestTrailingNegationThroughEngine:
    def test_warning_after_quiet_deadline(self):
        events = [
            report(0, spike=30),  # the fall candidate
            report(5, move=1),  # too little movement: does not cancel
            report(20, move=0),  # time passes the 15 s deadline
        ]
        result = CaesarEngine(build_model()).run(EventStream(events))
        warnings = [
            e for e in result.outputs if e.type_name == "FallWarning"
        ]
        assert [w["sec"] for w in warnings] == [0]

    def test_movement_cancels_warning(self):
        events = [
            report(0, spike=30),
            report(5, move=4),  # qualifying movement within the window
            report(20, move=0),
        ]
        result = CaesarEngine(build_model()).run(EventStream(events))
        assert all(e.type_name != "FallWarning" for e in result.outputs)

    def test_other_subject_movement_does_not_cancel(self):
        events = [
            report(0, spike=30, subject=1),
            report(5, move=4, subject=2),  # guard: different subject
            report(20, move=0, subject=1),
        ]
        result = CaesarEngine(build_model()).run(EventStream(events))
        warnings = [
            e for e in result.outputs if e.type_name == "FallWarning"
        ]
        assert [w["subject"] for w in warnings] == [1]

    def test_pending_match_discarded_when_context_ends(self):
        """The fall query belongs to rest: if the subject becomes active
        before the deadline, the pending match dies with the window."""
        events = [
            report(0, spike=30),
            report(5, move=10),  # activates the active context
            report(30, move=0),  # deactivates; deadline long past
            report(40, move=0),
        ]
        result = CaesarEngine(build_model()).run(EventStream(events))
        assert all(e.type_name != "FallWarning" for e in result.outputs)

    def test_deadline_needs_a_later_batch_to_fire(self):
        """With no event after the deadline, the pending match stays
        pending — time only advances with the stream."""
        events = [report(0, spike=30), report(10, move=0)]
        result = CaesarEngine(build_model()).run(EventStream(events))
        assert all(e.type_name != "FallWarning" for e in result.outputs)
