"""Tests for the context-aware load shedder and its engine wiring."""

import pytest

from repro import (
    CaesarModel,
    EngineConfig,
    SheddingConfig,
    create_engine,
    parse_query,
)
from repro.api import SupervisionConfig
from repro.events import Event, EventStream, EventType
from repro.runtime import DeadLetterQueue, REASON_SHED
from repro.runtime.reporting import REPORT_SCHEMA_VERSION, report_to_dict
from repro.runtime.shedding import (
    DECISION_PROTECTED,
    LoadShedder,
    OverloadController,
    SHED_ENV_VAR,
    _PRESSURE_GRID,
    _unit_hash,
    event_value_key,
    resolve_shedding,
)

TRIGGER = EventType.define("ShedTrigger", level="int")
READING = EventType.define("ShedReading", value="int", sec="int")
KEEP = EventType.define("ShedKeep", value="int", sec="int")
NOISE = EventType.define("ShedNoise", n="int")


def build_model():
    """normal (default) consumes ShedKeep; alert consumes ShedReading;
    ShedTrigger drives the alert context; ShedNoise interests nobody."""
    model = CaesarModel(default_context="normal")
    model.add_context("normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN ShedTrigger t "
        "WHERE t.level > 0 CONTEXT normal", name="raise_alert"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN ShedTrigger t "
        "WHERE t.level <= 0 CONTEXT alert", name="clear_alert"))
    model.add_query(parse_query(
        "DERIVE Heartbeat(k.value, k.sec) PATTERN ShedKeep k CONTEXT normal",
        name="heartbeat"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value, r.sec) PATTERN ShedReading r CONTEXT alert",
        name="alarm"))
    return model


def calm_stream(n=30):
    """No triggers: alert stays inactive, so readings are warm ballast."""
    events = []
    for t in range(n):
        events.append(Event(KEEP, t, {"value": t, "sec": t}))
        events.append(Event(READING, t, {"value": t, "sec": t}))
        events.append(Event(NOISE, t, {"n": t}))
    return events


def canon(report):
    return sorted(
        (e.type_name, e.timestamp, tuple(sorted(e.payload.items())))
        for e in report.outputs
    )


class TestResolve:
    def test_defaults_to_off(self, monkeypatch):
        monkeypatch.delenv(SHED_ENV_VAR, raising=False)
        assert resolve_shedding(None) is None

    @pytest.mark.parametrize("value", ["", "off", "0", "false", "none"])
    def test_off_values(self, value):
        assert resolve_shedding(value) is None

    @pytest.mark.parametrize("value", ["on", "1", "true", "enabled"])
    def test_on_values(self, value):
        assert resolve_shedding(value) == SheddingConfig()

    def test_env_var_consulted_when_unspecified(self, monkeypatch):
        monkeypatch.setenv(SHED_ENV_VAR, "on")
        assert resolve_shedding(None) == SheddingConfig()
        monkeypatch.setenv(SHED_ENV_VAR, "off")
        assert resolve_shedding(None) is None

    def test_bool_and_config_specs(self):
        assert resolve_shedding(True) == SheddingConfig()
        assert resolve_shedding(False) is None
        config = SheddingConfig(seed=5)
        assert resolve_shedding(config) is config
        assert resolve_shedding(SheddingConfig(enabled=False)) is None

    def test_kv_spec(self):
        config = resolve_shedding(
            "latency_target=2.5,cost_rate=40,seed=9,record_decisions=on"
        )
        assert config.latency_target == 2.5
        assert config.cost_rate == 40.0
        assert config.seed == 9
        assert config.record_decisions is True

    def test_kv_spec_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown"):
            resolve_shedding("latency=1.0")

    def test_kv_spec_rejects_bare_token(self):
        with pytest.raises(ValueError, match="key=value"):
            resolve_shedding("fast")

    def test_priorities_mapping_normalized(self):
        config = SheddingConfig(context_priorities={"b": 0.2, "a": 0.9})
        assert config.context_priorities == (("a", 0.9), ("b", 0.2))
        assert config.priority("a") == 0.9
        assert config.priority("missing") == 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="max_shed_fraction"):
            SheddingConfig(max_shed_fraction=1.5)
        with pytest.raises(ValueError, match="priority"):
            SheddingConfig(context_priorities={"x": 2.0})
        with pytest.raises(ValueError, match="fixed_pressure"):
            SheddingConfig(fixed_pressure=-0.1)


class TestController:
    def test_zero_pressure_under_target(self):
        controller = OverloadController(SheddingConfig(latency_target=1.0))
        assert controller.update(dt=1.0, latency=0.5, depth=None) == 0.0

    def test_pressure_rises_with_overshoot_and_integral(self):
        controller = OverloadController(SheddingConfig(latency_target=1.0))
        first = controller.update(dt=1.0, latency=1.5, depth=None)
        second = controller.update(dt=1.0, latency=1.5, depth=None)
        assert 0.0 < first < 1.0
        assert second > first  # the integral term accumulates

    def test_integral_is_clamped(self):
        config = SheddingConfig(latency_target=1.0, ki=0.5)
        controller = OverloadController(config)
        for _ in range(100):
            controller.update(dt=10.0, latency=100.0, depth=None)
        assert controller.integral <= 1.0 / config.ki

    def test_pressure_is_quantized(self):
        controller = OverloadController(SheddingConfig(latency_target=3.0))
        pressure = controller.update(dt=1.0, latency=3.7, depth=None)
        assert pressure == round(pressure * _PRESSURE_GRID) / _PRESSURE_GRID

    def test_depth_target(self):
        controller = OverloadController(SheddingConfig(depth_target=10))
        assert controller.update(dt=1.0, latency=None, depth=5) == 0.0
        assert controller.update(dt=1.0, latency=None, depth=40) > 0.0


class TestSampling:
    def test_unit_hash_is_deterministic_and_uniform_ish(self):
        values = [_unit_hash(2016, 42, i) for i in range(200)]
        assert values == [_unit_hash(2016, 42, i) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.3 < sum(values) / len(values) < 0.7

    def test_event_value_key_matches_across_objects(self):
        a = Event(NOISE, 3, {"n": 7})
        b = Event(NOISE, 3, {"n": 7})
        assert a.event_id != b.event_id
        assert event_value_key(a) == event_value_key(b)


class TestClassification:
    def test_full_pressure_sheds_cold_and_warm_only(self):
        stream = calm_stream()
        off = create_engine(build_model()).run(EventStream(stream))
        engine = create_engine(
            build_model(),
            EngineConfig(shedding=SheddingConfig(
                fixed_pressure=1.0, record_decisions=True,
            )),
        )
        on = engine.run(EventStream(stream))
        assert on.shed_events > 0
        assert set(on.shed_by_class) <= {"cold", "warm"}
        assert on.shed_by_class.get("cold", 0) > 0
        assert on.shed_by_class.get("warm", 0) > 0
        # warm sheds are attributed to the interested context, cold to none
        assert set(on.shed_by_context) <= {"alert", "(none)"}
        # ShedKeep feeds the active default context: never shed
        shed_types = {key[0] for key in engine.shedder.shed_event_keys}
        assert "ShedKeep" not in shed_types
        assert "ShedTrigger" not in shed_types
        # and the outputs are identical anyway: warm readings feed a plan
        # that is suspended in the unshedded run too
        assert canon(on) == canon(off)

    def test_deriving_interest_forces_whole_batch_protection(self):
        """A same-timestamp trigger makes every context count as active."""
        stream = [
            Event(TRIGGER, 0, {"level": 1}),
            Event(READING, 0, {"value": 9, "sec": 0}),
        ]
        engine = create_engine(
            build_model(),
            EngineConfig(shedding=SheddingConfig(
                fixed_pressure=1.0, record_decisions=True,
            )),
        )
        report = engine.run(EventStream(stream))
        assert report.shed_events == 0
        assert report.protected_events == 2
        (_, codes), = engine.shedder.decisions
        assert set(codes) == {DECISION_PROTECTED}

    def test_active_context_events_protected_after_activation(self):
        """Once alert is active, readings are rung-3 protected."""
        stream = [Event(TRIGGER, 0, {"level": 1})]
        for t in range(1, 10):
            stream.append(Event(READING, t, {"value": t, "sec": t}))
        engine = create_engine(
            build_model(),
            EngineConfig(shedding=SheddingConfig(fixed_pressure=1.0)),
        )
        report = engine.run(EventStream(stream))
        assert report.shed_events == 0
        assert report.outputs_by_type.get("Alarm") == 9

    def test_retained_tick_keeps_partition_clock(self):
        """An all-sheddable batch retains one event as a tick."""
        stream = []
        for t in range(20):
            stream.append(Event(NOISE, t, {"n": t}))
        off = create_engine(build_model()).run(EventStream(stream))
        on = create_engine(
            build_model(),
            EngineConfig(shedding=SheddingConfig(
                fixed_pressure=1.0, max_shed_fraction=1.0,
            )),
        ).run(EventStream(stream))
        assert on.shed_ticks == 20  # one retained event per batch
        assert on.shed_events == 0  # every event became the tick
        assert canon(on) == canon(off)
        assert on.events_processed == off.events_processed

    def test_suspension_sheds_low_priority_active_context(self):
        stream = [Event(TRIGGER, 0, {"level": 1})]
        for t in range(1, 20):
            stream.append(Event(READING, t, {"value": t, "sec": t}))
            stream.append(Event(KEEP, t, {"value": t, "sec": t}))
        engine = create_engine(
            build_model(),
            EngineConfig(shedding=SheddingConfig(
                fixed_pressure=1.0,
                context_priorities={"alert": 0.1},
                suspend_below_priority=0.4,
            )),
        )
        off = create_engine(build_model()).run(EventStream(stream))
        assert off.outputs_by_type.get("Alarm") == 19
        report = engine.run(EventStream(stream))
        assert report.suspended_contexts == ("alert",)
        assert report.shed_by_class.get("suspended", 0) > 10
        assert report.shed_by_context.get("alert", 0) > 10
        # suspension deliberately sacrifices the low-value context's output
        assert report.outputs_by_type.get("Alarm", 0) < 19

    def test_suspension_off_by_default(self):
        stream = [Event(TRIGGER, 0, {"level": 1})]
        for t in range(1, 10):
            stream.append(Event(READING, t, {"value": t, "sec": t}))
        report = create_engine(
            build_model(),
            EngineConfig(shedding=SheddingConfig(
                fixed_pressure=1.0,
                context_priorities={"alert": 0.1},
            )),
        ).run(EventStream(stream))
        assert report.suspended_contexts == ()
        assert "suspended" not in report.shed_by_class


class TestDeterminism:
    @pytest.mark.parametrize("backend", ["thread"])
    def test_digest_matches_serial(self, backend):
        stream = calm_stream()
        config = SheddingConfig(fixed_pressure=0.7, record_decisions=True)
        reports = {}
        for name in ("serial", backend):
            engine = create_engine(
                build_model(),
                EngineConfig(shedding=config, backend=name),
            )
            reports[name] = engine.run(EventStream(stream))
        assert (
            reports["serial"].shed_decision_digest
            == reports[backend].shed_decision_digest
        )
        assert reports["serial"].shed_events == reports[backend].shed_events

    def test_same_seed_same_digest_different_seed_differs(self):
        stream = calm_stream()

        def digest(seed):
            engine = create_engine(
                build_model(),
                EngineConfig(shedding=SheddingConfig(
                    fixed_pressure=0.7, seed=seed,
                )),
            )
            return engine.run(EventStream(stream)).shed_decision_digest

        assert digest(1) == digest(1)
        assert digest(1) != digest(2)

    def test_controller_driven_run_is_reproducible(self):
        stream = calm_stream(60)
        config = SheddingConfig(latency_target=0.5, cost_rate=2.0)

        def run():
            engine = create_engine(
                build_model(), EngineConfig(shedding=config)
            )
            return engine.run(EventStream(stream))

        first, second = run(), run()
        assert first.shed_decision_digest == second.shed_decision_digest
        assert first.shed_by_class == second.shed_by_class
        assert canon(first) == canon(second)


class TestWiring:
    def test_off_is_a_strict_noop(self, monkeypatch):
        monkeypatch.delenv(SHED_ENV_VAR, raising=False)
        engine = create_engine(build_model())
        assert engine.shedder is None
        report = engine.run(EventStream(calm_stream()))
        assert report.shed_events == 0
        assert report.shed_decision_digest == ""
        assert report_to_dict(report)["overload"]["decision_digest"] == ""

    def test_env_var_enables_passthrough_defaults(self, monkeypatch):
        monkeypatch.setenv(SHED_ENV_VAR, "on")
        engine = create_engine(build_model())
        assert engine.shedder is not None
        report = engine.run(EventStream(calm_stream()))
        # no targets configured: pressure stays zero, nothing sheds
        assert report.shed_events == 0
        assert report.protected_events + report.sampled_events > 0
        assert report.shed_decision_digest != ""

    def test_report_to_dict_overload_schema(self):
        engine = create_engine(
            build_model(),
            EngineConfig(shedding=SheddingConfig(fixed_pressure=1.0)),
        )
        data = report_to_dict(engine.run(EventStream(calm_stream())))
        assert REPORT_SCHEMA_VERSION >= 4
        assert data["schema_version"] == REPORT_SCHEMA_VERSION
        overload = data["overload"]
        assert overload["shed_events"] > 0
        assert overload["pressure_peak"] == 1.0
        assert overload["shed_by_class"]
        assert len(overload["decision_digest"]) == 32
        assert "dead_letter_dropped_by_reason" in data["supervision"]

    def test_metrics_visible_at_default_observability(self):
        engine = create_engine(
            build_model(),
            EngineConfig(
                shedding=SheddingConfig(fixed_pressure=1.0),
                observability="on",
            ),
        )
        engine.run(EventStream(calm_stream()))
        registry = engine.observability.registry
        shed = registry.counter(
            "caesar_shed_events_total", "", labels={"class": "cold"}
        )
        assert shed.value > 0
        protected = registry.counter("caesar_protected_events_total", "")
        assert protected.value > 0
        assert registry.gauge("caesar_shed_pressure", "").value == 1.0

    def test_queue_depth_gauge_registered_with_shedding_off(self):
        engine = create_engine(build_model(), observability="on")
        engine.run(EventStream(calm_stream()))
        gauge = engine.observability.registry.gauge("caesar_queue_depth", "")
        assert gauge is engine.instruments.queue_depth

    def test_shed_events_reach_the_dead_letter_queue(self):
        queue = DeadLetterQueue(capacity=4)
        engine = create_engine(
            build_model(),
            EngineConfig(
                shedding=SheddingConfig(fixed_pressure=1.0),
                supervision=SupervisionConfig(dead_letters=queue),
            ),
        )
        report = engine.run(EventStream(calm_stream()))
        assert report.shed_events > 4
        assert report.dead_lettered[REASON_SHED] == report.shed_events
        entries = queue.entries(reason=REASON_SHED)
        assert entries and "pressure" in entries[0].error
        # the bounded queue wrapped: drops are attributed per reason
        assert report.dead_letter_dropped_by_reason[REASON_SHED] == (
            report.shed_events - len(entries)
        )

    def test_dead_letter_opt_out(self):
        queue = DeadLetterQueue()
        engine = create_engine(
            build_model(),
            EngineConfig(
                shedding=SheddingConfig(
                    fixed_pressure=1.0, dead_letter=False,
                ),
                supervision=SupervisionConfig(dead_letters=queue),
            ),
        )
        report = engine.run(EventStream(calm_stream()))
        assert report.shed_events > 0
        assert len(queue.entries(reason=REASON_SHED)) == 0

    def test_session_runs_admission_control(self):
        from repro.runtime.session import EngineSession

        engine = create_engine(
            build_model(),
            EngineConfig(shedding=SheddingConfig(fixed_pressure=1.0)),
        )
        session = EngineSession(engine)
        session.feed(calm_stream())
        report = session.close()
        assert report.shed_events > 0
        assert report.shed_decision_digest != ""

    def test_shedder_rejected_for_shared_workloads(self):
        # a SharedWorkload engine has no admission path; the config is
        # rejected instead of silently ignored
        from repro.core.windows import WindowSpec
        from repro.optimizer.sharing import build_shared_workload

        workload = build_shared_workload(
            [WindowSpec(name="w", start=0, end=10)]
        )
        with pytest.raises(TypeError, match="shedding"):
            create_engine(
                workload,
                EngineConfig(shedding=SheddingConfig(fixed_pressure=1.0)),
            )
