"""Regression tests for the restore-then-run preserve flag.

``restore_checkpoint`` arms ``_preserve_state_once`` so the next run
continues from the restored state instead of resetting.  The flag used to
be consumed at run *entry*, so a run (or session) that failed before
committing its first transaction silently burned it — the retry then
started from a clean slate and recomputed the whole stream, the
chunk-boundary state-loss bug class this suite pins down.  The flag is
now consumed only after the first transaction commits.
"""

import pytest

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime import (
    CaesarEngine,
    EngineSession,
    capture_checkpoint,
    outputs_to_rows,
    restore_checkpoint,
)

READING = EventType.define("PsReading", value="int", sec="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN PsReading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN PsReading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value, r.sec) PATTERN PsReading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value):
    return Event(READING, t, {"value": value, "sec": t})


VALUES = [50, 150, 170, 90, 120, 30]
PREFIX = [reading(t * 10, v) for t, v in enumerate(VALUES[:3])]
SUFFIX = [reading((t + 3) * 10, v) for t, v in enumerate(VALUES[3:])]


class _PrepareBoom(Exception):
    pass


def restored_engine():
    base = CaesarEngine(build_model())
    base.run(EventStream(PREFIX))
    checkpoint = capture_checkpoint(base)
    engine = CaesarEngine(build_model())
    restore_checkpoint(engine, checkpoint)
    return engine


class TestPreserveSurvivesAbortedRun:
    def test_run_aborting_before_first_batch_keeps_restored_state(self):
        engine = restored_engine()
        original = engine._prepare_batch

        def boom(batch, t):
            raise _PrepareBoom()

        engine._prepare_batch = boom
        with pytest.raises(_PrepareBoom):
            engine.run(EventStream(SUFFIX))
        engine._prepare_batch = original

        # the aborted run processed nothing, so the retry must still see
        # the restored alert context: value 120 at t=40 alarms
        report = engine.run(EventStream(SUFFIX))
        assert report.outputs_by_type.get("Alarm") == 1

    def test_session_aborting_before_first_batch_keeps_restored_state(self):
        engine = restored_engine()
        original = engine._prepare_batch

        def boom(batch, t):
            raise _PrepareBoom()

        engine._prepare_batch = boom
        session = EngineSession(engine)
        with pytest.raises(_PrepareBoom):
            session.feed(SUFFIX[:1])
        engine._prepare_batch = original

        retry = EngineSession(engine)
        retry.feed(SUFFIX)
        report = retry.close()
        assert report.outputs_by_type.get("Alarm") == 1

    def test_flag_consumed_after_first_transaction(self):
        engine = restored_engine()
        assert engine._preserve_state_once
        session = EngineSession(engine)
        session.feed(SUFFIX[:1])
        assert not engine._preserve_state_once
        session.close()


class TestChunkedMatchesOneShot:
    def test_restored_suffix_in_chunks_matches_straight_run(self):
        straight = CaesarEngine(build_model()).run(
            EventStream(PREFIX + SUFFIX)
        )

        session = EngineSession(restored_engine())
        outputs = []
        for event in SUFFIX:
            outputs.extend(session.feed([event]))
        session.close()
        suffix_rows = [
            row for row in outputs_to_rows(straight)
            if row["time"] >= SUFFIX[0].timestamp
        ]
        assert outputs_to_rows(outputs) == suffix_rows
