"""Tests for report export and timeline rendering."""

import json

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.engine import CaesarEngine
from repro.runtime.reporting import (
    outputs_to_rows,
    render_timeline,
    report_to_dict,
)

READING = EventType.define("Reading", value="int", sec="int")


def run_engine():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value, r.sec) PATTERN Reading r CONTEXT alert",
        name="alarm"))
    values = [50, 150, 90, 130, 40]
    stream = EventStream(
        Event(READING, t * 10, {"value": v, "sec": t * 10})
        for t, v in enumerate(values)
    )
    return CaesarEngine(model).run(stream)


class TestReportToDict:
    def test_summary_fields(self):
        result = report_to_dict(run_engine())
        assert result["events_processed"] == 5
        assert result["outputs_by_type"] == {"Alarm": 2}
        assert result["batches"] == 5
        assert "<default>" in result["windows"]

    def test_json_serializable(self):
        text = json.dumps(report_to_dict(run_engine(), include_outputs=True))
        decoded = json.loads(text)
        assert decoded["outputs_by_type"]["Alarm"] == 2
        assert len(decoded["outputs"]) == 2
        assert decoded["outputs"][0]["type"] == "Alarm"

    def test_window_entries(self):
        result = report_to_dict(run_engine())
        windows = result["windows"]["<default>"]
        alert = [w for w in windows if w["context"] == "alert"]
        assert {"start": 10, "end": 20} .items() <= alert[0].items()
        open_windows = [w for w in windows if w["open"]]
        assert len(open_windows) == 1

    def test_outputs_excluded_by_default(self):
        assert "outputs" not in report_to_dict(run_engine())


class TestTimeline:
    def test_lanes_per_context(self):
        text = render_timeline(run_engine())
        assert "partition <default>" in text
        assert "alert" in text
        assert "normal" in text
        assert "#" in text

    def test_width_respected(self):
        text = render_timeline(run_engine(), width=30)
        lanes = [l for l in text.splitlines() if "#" in l or "-" in l]
        assert all(len(lane.split()[-1]) <= 30 for lane in lanes)

    def test_specific_partition(self):
        report = run_engine()
        text = render_timeline(report, partition=None)
        assert text.count("partition") == 1


class TestOutputRows:
    def test_rows_flatten_payloads(self):
        rows = outputs_to_rows(run_engine())
        assert len(rows) == 2
        assert rows[0]["type"] == "Alarm"
        assert rows[0]["value"] == 150
        assert rows[0]["time"] == 10
