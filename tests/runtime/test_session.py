"""Tests for the incremental engine session."""

import pytest

from repro.core.model import CaesarModel
from repro.errors import RuntimeEngineError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime.engine import CaesarEngine
from repro.runtime.session import EngineSession

READING = EventType.define("Reading", value="int", sec="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value, r.sec) PATTERN Reading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value):
    return Event(READING, t, {"value": value, "sec": t})


VALUES = [50, 150, 170, 90, 120, 30]


class TestIncrementalFeeding:
    def test_outputs_arrive_as_fed(self):
        session = EngineSession(CaesarEngine(build_model()))
        assert session.feed([reading(0, 50)]) == []
        alarms = session.feed([reading(10, 150)])
        assert [e["value"] for e in alarms] == [150]
        assert session.feed([reading(20, 90)]) == []

    def test_matches_batch_run(self):
        events = [reading(t * 10, v) for t, v in enumerate(VALUES)]
        batch_report = CaesarEngine(build_model()).run(EventStream(events))

        session = EngineSession(CaesarEngine(build_model()))
        incremental_outputs = []
        for event in events:
            incremental_outputs.extend(session.feed([event]))
        report = session.close()

        assert sorted(
            (e.type_name, e.timestamp) for e in incremental_outputs
        ) == sorted((e.type_name, e.timestamp) for e in batch_report.outputs)
        assert report.events_processed == batch_report.events_processed
        assert report.batches == batch_report.batches
        assert report.outputs_by_type == batch_report.outputs_by_type

    def test_multi_timestamp_feed(self):
        session = EngineSession(CaesarEngine(build_model()))
        events = [reading(t * 10, v) for t, v in enumerate(VALUES)]
        outputs = session.feed(events)
        assert [e["value"] for e in outputs] == [150, 170, 120]

    def test_out_of_order_counts_late(self):
        session = EngineSession(CaesarEngine(build_model()))
        session.feed([reading(10, 50)])
        assert session.feed([reading(5, 50)]) == []
        assert session.late_events == 1

    def test_out_of_order_dead_lettered(self):
        from repro.runtime.deadletter import REASON_LATE
        from repro.runtime.supervisor import SupervisedEngine

        session = EngineSession(SupervisedEngine(build_model()))
        session.feed([reading(10, 50)])
        session.feed([reading(5, 50)])
        dlq = session.engine.dead_letters
        assert dlq.counts_by_reason.get(REASON_LATE) == 1

    def test_out_of_order_within_delay_bound_recovered(self):
        events = [reading(t * 10, v) for t, v in enumerate(VALUES)]
        expected = CaesarEngine(build_model()).run(EventStream(events))

        session = EngineSession(CaesarEngine(build_model()), max_delay=20)
        shuffled = [events[1], events[0], events[3], events[2],
                    events[4], events[5]]
        outputs = []
        for event in shuffled:
            outputs.extend(session.feed([event]))
        outputs.extend(session.flush())
        report = session.close()
        assert session.late_events == 0
        assert sorted(
            (e.type_name, e.timestamp) for e in outputs
        ) == sorted((e.type_name, e.timestamp) for e in expected.outputs)
        assert report.events_processed == expected.events_processed

    def test_equal_timestamps_across_calls(self):
        session = EngineSession(CaesarEngine(build_model()))
        alarms = session.feed([reading(10, 150)])
        assert len(alarms) == 1
        # the transaction for t=10 already committed: the second event
        # cannot reopen it and is accounted late, not an error
        assert session.feed([reading(10, 150)]) == []
        assert session.late_events == 1

    def test_frontier_mode_batches_equal_timestamps(self):
        # two events at t=10 submitted in separate calls must still form
        # ONE stream transaction in frontier mode
        events = [reading(0, 150), reading(10, 120), reading(10, 130),
                  reading(20, 50)]
        expected = CaesarEngine(build_model()).run(EventStream(events))

        session = EngineSession(CaesarEngine(build_model()), eager=False)
        outputs = []
        for event in events:
            outputs.extend(session.feed([event]))
        report = session.close()
        assert session.late_events == 0
        assert report.events_processed == expected.events_processed
        assert report.outputs_by_type == expected.outputs_by_type
        assert sorted(
            (e.type_name, e.timestamp) for e in report.outputs
        ) == sorted((e.type_name, e.timestamp) for e in expected.outputs)


class TestSessionIntrospection:
    def test_now_and_active_contexts(self):
        # active_contexts() reads the parent-side partition store, so pin
        # an in-process backend (CAESAR_BACKEND=process keeps state in
        # workers and the parent view would be empty)
        session = EngineSession(CaesarEngine(build_model(), backend="serial"))
        assert session.now is None
        session.feed([reading(0, 50)])
        assert session.now == 0
        assert session.active_contexts() == ("normal",)
        session.feed([reading(10, 500)])
        assert session.active_contexts() == ("alert",)

    def test_close_finalizes(self):
        session = EngineSession(CaesarEngine(build_model()))
        session.feed([reading(0, 150)])
        report = session.close()
        assert report.outputs_by_type == {"Alarm": 1}
        with pytest.raises(RuntimeEngineError, match="closed"):
            session.feed([reading(10, 50)])

    def test_report_windows(self):
        session = EngineSession(CaesarEngine(build_model()))
        session.feed([reading(t * 10, v) for t, v in enumerate(VALUES)])
        report = session.close()
        names = [w.context_name for w in report.windows_by_partition[None]]
        assert "alert" in names
