"""Tests for engine checkpoint/restore."""

import pytest

from repro.core.model import CaesarModel
from repro.errors import RuntimeEngineError
from repro.events.event import Event
from repro.events.types import EventType
from repro.language import parse_query
from repro.linearroad.stats import segment_stats_aggregator
from repro.runtime.checkpoint import capture_checkpoint, restore_checkpoint
from repro.runtime.engine import CaesarEngine
from repro.runtime.session import EngineSession

READING = EventType.define("Reading", value="int", sec="int", zone="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    # a stateful query: pairs of equal readings within the alert window
    model.add_query(parse_query(
        "DERIVE Pair(a.sec, b.sec) PATTERN SEQ(Reading a, Reading b) "
        "WHERE a.value = b.value CONTEXT alert", name="pairs"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value) PATTERN Reading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value, zone=0):
    return Event(READING, t, {"value": value, "sec": t, "zone": zone})


VALUES = [50, 150, 170, 150, 90, 120, 120, 30]


def outputs_key(events):
    return sorted(
        (e.type_name, e.start_time, e.timestamp,
         str(sorted(e.payload.items())))
        for e in events
    )


class TestCheckpointRoundTrip:
    def test_resume_equals_uninterrupted_run(self):
        events = [reading(t * 10, v) for t, v in enumerate(VALUES)]
        split = 4  # mid-alert, with a live partial match

        # uninterrupted reference
        reference = EngineSession(CaesarEngine(build_model()))
        reference_outputs = reference.feed(events)

        # interrupted run: process the prefix, checkpoint, restore into a
        # brand-new engine, process the suffix
        first = EngineSession(CaesarEngine(build_model()))
        prefix_outputs = first.feed(events[:split])
        checkpoint = capture_checkpoint(first.engine)

        resumed_engine = CaesarEngine(build_model())
        restore_checkpoint(resumed_engine, checkpoint)
        second = EngineSession(resumed_engine)
        suffix_outputs = second.feed(events[split:])

        assert outputs_key(prefix_outputs + suffix_outputs) == outputs_key(
            reference_outputs
        )

    def test_checkpoint_is_replayable(self):
        """Restoring the same checkpoint twice yields identical behavior."""
        events = [reading(t * 10, v) for t, v in enumerate(VALUES)]
        split = 3
        base = EngineSession(CaesarEngine(build_model()))
        base.feed(events[:split])
        checkpoint = capture_checkpoint(base.engine)

        results = []
        for _ in range(2):
            engine = CaesarEngine(build_model())
            restore_checkpoint(engine, checkpoint)
            session = EngineSession(engine)
            results.append(outputs_key(session.feed(events[split:])))
        assert results[0] == results[1]

    def test_context_windows_survive(self):
        events = [reading(t * 10, v) for t, v in enumerate(VALUES[:3])]
        session = EngineSession(CaesarEngine(build_model()))
        session.feed(events)
        checkpoint = capture_checkpoint(session.engine)
        engine = CaesarEngine(build_model())
        restore_checkpoint(engine, checkpoint)
        store = engine.partition_store(None)
        assert store.active_contexts() == ("alert",)
        assert store.open_window("alert").start == 10

    def test_partitioned_checkpoint(self):
        events = []
        for t, v in enumerate(VALUES[:4]):
            events.append(reading(t * 10, v, zone=1))
            events.append(reading(t * 10, 10, zone=2))
        first = EngineSession(
            CaesarEngine(build_model(), partition_by=lambda e: e["zone"])
        )
        first.feed(events)
        checkpoint = capture_checkpoint(first.engine)
        engine = CaesarEngine(build_model(), partition_by=lambda e: e["zone"])
        restore_checkpoint(engine, checkpoint)
        assert engine.partition_store(1).active_contexts() == ("alert",)
        assert engine.partition_store(2).active_contexts() == ("normal",)

    def test_preprocessor_state_round_trips(self):
        from repro.linearroad.queries import (
            build_traffic_model,
            segment_partitioner,
        )
        from repro.linearroad.schema import POSITION_REPORT

        engine = CaesarEngine(
            build_traffic_model(),
            preprocessors=(segment_stats_aggregator(),),
            partition_by=segment_partitioner,
        )
        session = EngineSession(engine)
        session.feed([
            Event(POSITION_REPORT, 0, {
                "vid": 1, "sec": 0, "speed": 30, "xway": 0,
                "lane": "middle", "dir": 0, "seg": 0, "pos": 100,
            })
        ])
        checkpoint = capture_checkpoint(engine)
        engine2 = CaesarEngine(
            build_traffic_model(),
            preprocessors=(segment_stats_aggregator(),),
            partition_by=segment_partitioner,
        )
        restore_checkpoint(engine2, checkpoint)
        aggregate = engine2._partition((0, 0, 0)).preprocessors[0]
        assert aggregate.state_size() == 1


class TestCheckpointValidation:
    def test_version_checked(self):
        engine = CaesarEngine(build_model())
        with pytest.raises(RuntimeEngineError, match="version"):
            restore_checkpoint(engine, {"version": 99})

    def test_context_set_checked(self):
        engine = CaesarEngine(build_model())
        checkpoint = capture_checkpoint(engine)
        other = CaesarModel(default_context="normal")
        other.add_context("different")
        with pytest.raises(RuntimeEngineError, match="different contexts"):
            restore_checkpoint(CaesarEngine(other), checkpoint)

    def test_default_context_checked(self):
        engine = CaesarEngine(build_model())
        checkpoint = capture_checkpoint(engine)
        other = CaesarModel(default_context="idle")
        other.add_context("alert")
        other.add_context("normal")
        checkpoint["contexts"] = tuple(other.context_names)
        with pytest.raises(RuntimeEngineError, match="default context"):
            restore_checkpoint(CaesarEngine(other), checkpoint)
