"""Tests for engine checkpoint/restore."""

import pytest

from repro.core.model import CaesarModel
from repro.errors import CheckpointMismatchError, RuntimeEngineError
from repro.events.event import Event
from repro.events.types import EventType
from repro.language import parse_query
from repro.linearroad.stats import segment_stats_aggregator
from repro.runtime.checkpoint import capture_checkpoint, restore_checkpoint
from repro.runtime.engine import CaesarEngine
from repro.runtime.session import EngineSession

READING = EventType.define("Reading", value="int", sec="int", zone="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    # a stateful query: pairs of equal readings within the alert window
    model.add_query(parse_query(
        "DERIVE Pair(a.sec, b.sec) PATTERN SEQ(Reading a, Reading b) "
        "WHERE a.value = b.value CONTEXT alert", name="pairs"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value) PATTERN Reading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value, zone=0):
    return Event(READING, t, {"value": value, "sec": t, "zone": zone})


VALUES = [50, 150, 170, 150, 90, 120, 120, 30]


def outputs_key(events):
    return sorted(
        (e.type_name, e.start_time, e.timestamp,
         str(sorted(e.payload.items())))
        for e in events
    )


class TestCheckpointRoundTrip:
    def test_resume_equals_uninterrupted_run(self):
        events = [reading(t * 10, v) for t, v in enumerate(VALUES)]
        split = 4  # mid-alert, with a live partial match

        # uninterrupted reference
        reference = EngineSession(CaesarEngine(build_model()))
        reference_outputs = reference.feed(events)

        # interrupted run: process the prefix, checkpoint, restore into a
        # brand-new engine, process the suffix
        first = EngineSession(CaesarEngine(build_model()))
        prefix_outputs = first.feed(events[:split])
        checkpoint = capture_checkpoint(first.engine)

        resumed_engine = CaesarEngine(build_model())
        restore_checkpoint(resumed_engine, checkpoint)
        second = EngineSession(resumed_engine)
        suffix_outputs = second.feed(events[split:])

        assert outputs_key(prefix_outputs + suffix_outputs) == outputs_key(
            reference_outputs
        )

    def test_checkpoint_is_replayable(self):
        """Restoring the same checkpoint twice yields identical behavior."""
        events = [reading(t * 10, v) for t, v in enumerate(VALUES)]
        split = 3
        base = EngineSession(CaesarEngine(build_model()))
        base.feed(events[:split])
        checkpoint = capture_checkpoint(base.engine)

        results = []
        for _ in range(2):
            engine = CaesarEngine(build_model())
            restore_checkpoint(engine, checkpoint)
            session = EngineSession(engine)
            results.append(outputs_key(session.feed(events[split:])))
        assert results[0] == results[1]

    def test_context_windows_survive(self):
        events = [reading(t * 10, v) for t, v in enumerate(VALUES[:3])]
        session = EngineSession(CaesarEngine(build_model()))
        session.feed(events)
        checkpoint = capture_checkpoint(session.engine)
        engine = CaesarEngine(build_model())
        restore_checkpoint(engine, checkpoint)
        store = engine.partition_store(None)
        assert store.active_contexts() == ("alert",)
        assert store.open_window("alert").start == 10

    def test_partitioned_checkpoint(self):
        events = []
        for t, v in enumerate(VALUES[:4]):
            events.append(reading(t * 10, v, zone=1))
            events.append(reading(t * 10, 10, zone=2))
        first = EngineSession(
            CaesarEngine(build_model(), partition_by=lambda e: e["zone"])
        )
        first.feed(events)
        checkpoint = capture_checkpoint(first.engine)
        engine = CaesarEngine(build_model(), partition_by=lambda e: e["zone"])
        restore_checkpoint(engine, checkpoint)
        assert engine.partition_store(1).active_contexts() == ("alert",)
        assert engine.partition_store(2).active_contexts() == ("normal",)

    def test_preprocessor_state_round_trips(self):
        from repro.linearroad.queries import (
            build_traffic_model,
            segment_partitioner,
        )
        from repro.linearroad.schema import POSITION_REPORT

        engine = CaesarEngine(
            build_traffic_model(),
            preprocessors=(segment_stats_aggregator(),),
            partition_by=segment_partitioner,
        )
        session = EngineSession(engine)
        session.feed([
            Event(POSITION_REPORT, 0, {
                "vid": 1, "sec": 0, "speed": 30, "xway": 0,
                "lane": "middle", "dir": 0, "seg": 0, "pos": 100,
            })
        ])
        checkpoint = capture_checkpoint(engine)
        engine2 = CaesarEngine(
            build_traffic_model(),
            preprocessors=(segment_stats_aggregator(),),
            partition_by=segment_partitioner,
        )
        restore_checkpoint(engine2, checkpoint)
        aggregate = engine2._partition((0, 0, 0)).preprocessors[0]
        assert aggregate.state_size() == 1


class TestCheckpointValidation:
    def test_version_checked(self):
        engine = CaesarEngine(build_model())
        with pytest.raises(RuntimeEngineError, match="version"):
            restore_checkpoint(engine, {"version": 99})

    def test_context_set_checked(self):
        engine = CaesarEngine(build_model())
        checkpoint = capture_checkpoint(engine)
        other = CaesarModel(default_context="normal")
        other.add_context("different")
        with pytest.raises(RuntimeEngineError, match="different contexts"):
            restore_checkpoint(CaesarEngine(other), checkpoint)

    def test_default_context_checked(self):
        engine = CaesarEngine(build_model())
        checkpoint = capture_checkpoint(engine)
        other = CaesarModel(default_context="idle")
        other.add_context("alert")
        other.add_context("normal")
        checkpoint["contexts"] = tuple(other.context_names)
        with pytest.raises(RuntimeEngineError, match="default context"):
            restore_checkpoint(CaesarEngine(other), checkpoint)

    @pytest.mark.parametrize("flag", ["context_aware", "optimize"])
    def test_engine_flag_mismatch_names_the_flag(self, flag):
        """A checkpoint is only valid for a structurally equivalent engine:
        restoring into one built with different ``context_aware``/
        ``optimize`` flags raises, and the message names the flag."""
        engine = CaesarEngine(build_model())
        checkpoint = capture_checkpoint(engine)
        other = CaesarEngine(build_model(), **{flag: False})
        with pytest.raises(CheckpointMismatchError, match=flag):
            restore_checkpoint(other, checkpoint)

    def test_mismatch_error_is_a_runtime_engine_error(self):
        assert issubclass(CheckpointMismatchError, RuntimeEngineError)


NEG_REPORT = EventType.define(
    "NegReport", subject="int", spike="int", move="int", sec="int"
)


def build_negation_model():
    """A model whose live state includes both partial SEQ matches and
    pending trailing-negation deadlines."""
    model = CaesarModel(default_context="rest")
    model.add_context("active")
    model.add_query(parse_query(
        "INITIATE CONTEXT active PATTERN NegReport r WHERE r.move > 5 "
        "CONTEXT rest", name="activate"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT active PATTERN NegReport r WHERE r.move = 0 "
        "CONTEXT active", name="deactivate"))
    model.add_query(parse_query(
        "DERIVE FallWarning(s.subject, s.sec) "
        "PATTERN SEQ(NegReport s, NOT NegReport m) "
        "WHERE s.spike > 20 AND m.subject = s.subject AND m.move > 2 "
        "WITHIN 15 CONTEXT rest",
        name="fall"))
    model.add_query(parse_query(
        "DERIVE Spike(a.sec, b.sec) "
        "PATTERN SEQ(NegReport a, NegReport b) "
        "WHERE a.spike > 20 AND b.spike > 20 CONTEXT rest",
        name="spikes"))
    return model


class TestCheckpointPickling:
    def test_pickled_checkpoint_round_trips_live_pattern_state(self):
        """A checkpoint is picklable even when it carries partial SEQ
        matches and pending negation deadlines, and the unpickled copy
        restores to identical replay behavior."""
        import pickle

        def neg_report(t, spike=0, move=0):
            return Event(
                NEG_REPORT, t,
                {"subject": 1, "spike": spike, "move": move, "sec": t},
            )

        events = [
            neg_report(0, spike=30),   # fall candidate: pending deadline
            neg_report(5, spike=25),   # partial SEQ(a, b) match + candidate
            neg_report(20, move=0),    # past the 15s deadline: warnings fire
            neg_report(25, spike=40),  # second element of a Spike pair
        ]
        split = 2  # checkpoint while deadlines and partials are live

        reference = EngineSession(CaesarEngine(build_negation_model()))
        reference_outputs = reference.feed(events)

        first = EngineSession(CaesarEngine(build_negation_model()))
        prefix_outputs = first.feed(events[:split])
        checkpoint = pickle.loads(pickle.dumps(
            capture_checkpoint(first.engine)
        ))

        resumed = CaesarEngine(build_negation_model())
        restore_checkpoint(resumed, checkpoint)
        suffix_outputs = EngineSession(resumed).feed(events[split:])

        assert outputs_key(prefix_outputs + suffix_outputs) == outputs_key(
            reference_outputs
        )
        # the round trip preserved what matters: the deadline actually fired
        assert any(
            e.type_name == "FallWarning" for e in suffix_outputs
        )
        assert any(e.type_name == "Spike" for e in suffix_outputs)
