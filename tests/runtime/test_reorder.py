"""Tests for the bounded reorder buffer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StreamOrderError
from repro.events.event import Event
from repro.events.types import EventType
from repro.runtime.reorder import ReorderBuffer

TICK = EventType.define("Tick", n="int")


def tick(t, n=0):
    return Event(TICK, t, {"n": n})


class TestBasics:
    def test_in_order_passthrough(self):
        buffer = ReorderBuffer(max_delay=10)
        released = list(buffer.feed([tick(0), tick(20), tick(40)]))
        released.extend(buffer.flush())
        assert [e.timestamp for e in released] == [0, 20, 40]

    def test_reorders_within_bound(self):
        buffer = ReorderBuffer(max_delay=10)
        released = list(buffer.feed([tick(10), tick(5), tick(30)]))
        released.extend(buffer.flush())
        assert [e.timestamp for e in released] == [5, 10, 30]
        assert buffer.reordered_events == 1

    def test_watermark_gating(self):
        buffer = ReorderBuffer(max_delay=10)
        assert buffer.push(tick(10)) == []  # watermark at 0: nothing safe
        released = buffer.push(tick(25))  # watermark 15 releases t=10
        assert [e.timestamp for e in released] == [10]

    def test_late_event_dropped_and_counted(self):
        buffer = ReorderBuffer(max_delay=5)
        # watermark reaches 95: t=0 and t=50 are released
        list(buffer.feed([tick(0), tick(50), tick(100)]))
        assert buffer.push(tick(3)) == []  # older than last release (50)
        assert buffer.late_events == 1

    def test_late_event_raises_when_configured(self):
        buffer = ReorderBuffer(max_delay=5, on_late="raise")
        list(buffer.feed([tick(0), tick(50), tick(100)]))
        with pytest.raises(StreamOrderError, match="reorder bound"):
            buffer.push(tick(3))

    def test_flush_releases_everything(self):
        buffer = ReorderBuffer(max_delay=1000)
        list(buffer.feed([tick(5), tick(3), tick(9)]))
        assert [e.timestamp for e in buffer.flush()] == [3, 5, 9]
        assert buffer.pending == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="non-negative"):
            ReorderBuffer(max_delay=-1)
        with pytest.raises(ValueError, match="on_late"):
            ReorderBuffer(max_delay=1, on_late="explode")

    def test_sort_stream(self):
        buffer = ReorderBuffer(max_delay=100)
        stream = buffer.sort_stream([tick(9), tick(2), tick(5)])
        assert [e.timestamp for e in stream] == [2, 5, 9]

    def test_event_exactly_at_watermark_is_not_late(self):
        """Boundary regression: an event whose timestamp equals the
        watermark (== the last released timestamp) is still accepted and
        released in order, not counted late."""
        buffer = ReorderBuffer(max_delay=10)
        assert buffer.push(tick(10)) == []
        released = buffer.push(tick(20))  # watermark 10: releases t=10
        assert [e.timestamp for e in released] == [10]
        assert buffer.watermark == 10
        duplicate = buffer.push(tick(10, n=1))  # == watermark: on time
        assert [e.timestamp for e in duplicate] == [10]
        assert buffer.late_events == 0
        # one unit older is late
        assert buffer.push(tick(9)) == []
        assert buffer.late_events == 1

    def test_negative_timestamps_not_misclassified(self):
        """Regression: ``_max_seen`` initialized to ``-1`` anchored the
        initial watermark at ``-1 - max_delay``, so streams with negative
        timestamps (epoch offsets) were silently dead-lettered."""
        buffer = ReorderBuffer(max_delay=0)
        released = list(buffer.feed([tick(-30), tick(-20), tick(-10)]))
        released.extend(buffer.flush())
        assert [e.timestamp for e in released] == [-30, -20, -10]
        assert buffer.late_events == 0

    def test_negative_timestamps_reorder_within_bound(self):
        buffer = ReorderBuffer(max_delay=10)
        released = list(buffer.feed([tick(-10), tick(-15), tick(-2), tick(20)]))
        released.extend(buffer.flush())
        assert [e.timestamp for e in released] == [-15, -10, -2, 20]
        assert buffer.late_events == 0
        assert buffer.reordered_events == 1

    def test_first_event_never_counted_reordered(self):
        """Regression: the numeric sentinel compared the first event's
        timestamp against ``-1`` — an event at a negative time could be
        mis-booked as reordered (or late) before any predecessor existed."""
        buffer = ReorderBuffer(max_delay=100)
        buffer.push(tick(-50))
        assert buffer.reordered_events == 0
        assert buffer.late_events == 0
        assert buffer.watermark == -150

    def test_initial_watermark_is_minus_infinity(self):
        buffer = ReorderBuffer(max_delay=5)
        assert buffer.watermark == float("-inf")
        assert buffer.flush() == []

    def test_negative_late_event_detected(self):
        buffer = ReorderBuffer(max_delay=5)
        list(buffer.feed([tick(-100), tick(-50)]))
        assert buffer.push(tick(-90)) == []  # watermark at -55
        assert buffer.late_events == 1

    def test_on_late_callback_invoked_after_counting(self):
        seen = []
        buffer = ReorderBuffer(max_delay=5, on_late=seen.append)
        list(buffer.feed([tick(0), tick(50), tick(100)]))
        assert buffer.push(tick(3)) == []
        assert buffer.late_events == 1
        assert [e.timestamp for e in seen] == [3]


class TestProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=200), max_size=50),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=100)
    def test_output_is_always_sorted(self, times, max_delay):
        buffer = ReorderBuffer(max_delay=max_delay)
        released = list(buffer.feed(tick(t) for t in times))
        released.extend(buffer.flush())
        stamps = [e.timestamp for e in released]
        assert stamps == sorted(stamps)

    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=50))
    @settings(max_examples=100)
    def test_nothing_lost_with_sufficient_delay(self, times):
        """A delay covering the worst jitter loses no event."""
        buffer = ReorderBuffer(max_delay=200)
        released = list(buffer.feed(tick(t) for t in times))
        released.extend(buffer.flush())
        assert len(released) == len(times)
        assert buffer.late_events == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=200), max_size=50),
        st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=100)
    def test_released_plus_late_equals_input(self, times, max_delay):
        buffer = ReorderBuffer(max_delay=max_delay)
        released = list(buffer.feed(tick(t) for t in times))
        released.extend(buffer.flush())
        assert len(released) + buffer.late_events == len(times)


class TestEngineIntegration:
    def test_jittered_feed_runs_through_engine(self):
        """A shuffled feed, reordered, produces the same outputs as the
        pristine stream."""
        from repro.core.model import CaesarModel
        from repro.language import parse_query
        from repro.events.stream import EventStream
        from repro.runtime.engine import CaesarEngine

        reading = EventType.define("Reading", value="int", sec="int")
        model = CaesarModel(default_context="normal")
        model.add_context("alert")
        model.add_query(parse_query(
            "INITIATE CONTEXT alert PATTERN Reading r WHERE r.value > 10 "
            "CONTEXT normal", name="up"))
        model.add_query(parse_query(
            "TERMINATE CONTEXT alert PATTERN Reading r WHERE r.value <= 10 "
            "CONTEXT alert", name="down"))
        model.add_query(parse_query(
            "DERIVE Alarm(r.sec) PATTERN Reading r CONTEXT alert",
            name="alarm"))

        values = [(t * 10, (t * 7) % 20) for t in range(30)]
        pristine = [
            Event(reading, t, {"value": v, "sec": t}) for t, v in values
        ]
        jittered = list(pristine)
        random.Random(3).shuffle(jittered)

        ordered = ReorderBuffer(max_delay=10_000).sort_stream(jittered)
        report_reordered = CaesarEngine(model).run(ordered)
        report_pristine = CaesarEngine(model).run(EventStream(pristine))
        key = lambda r: sorted(
            (e.type_name, e.timestamp) for e in r.outputs
        )
        assert key(report_reordered) == key(report_pristine)


class TestFlushThenPush:
    def test_post_flush_event_within_bound_not_false_late(self):
        """Regression: lateness is judged against the *watermark*, not the
        last released timestamp.  A flush releases events ahead of the
        watermark; an event arriving afterwards that still honours
        ``max_delay`` must be accepted, not dropped as late."""
        buffer = ReorderBuffer(max_delay=10)
        list(buffer.feed([tick(0), tick(20)]))
        buffer.flush()  # releases t=20, far ahead of watermark 10
        released = buffer.push(tick(12))  # lags max_seen by 8 <= max_delay
        assert buffer.late_events == 0
        # watermark is still 10, so the event is buffered, not yet released
        assert released == []
        assert buffer.pending == 1
        released = buffer.push(tick(30))
        assert [e.timestamp for e in released] == [12]

    def test_post_flush_event_beyond_bound_still_late(self):
        buffer = ReorderBuffer(max_delay=10)
        list(buffer.feed([tick(0), tick(20)]))
        buffer.flush()
        assert buffer.push(tick(5)) == []  # lags by 15 > max_delay
        assert buffer.late_events == 1

    def test_late_error_names_watermark(self):
        buffer = ReorderBuffer(max_delay=5, on_late="raise")
        list(buffer.feed([tick(0), tick(100)]))
        with pytest.raises(StreamOrderError, match="watermark at t=95"):
            buffer.push(tick(3))
