"""Tests for stream transactions and conflict ordering (Section 6.2)."""

import pytest

from repro.errors import TransactionOrderError
from repro.runtime.transactions import (
    ContextOperation,
    OperationKind,
    StreamTransaction,
    TransactionLog,
)


def txn(partition, t, reads=(), writes=()):
    transaction = StreamTransaction(partition=partition, timestamp=t)
    for name in reads:
        transaction.record_read(name)
    for name in writes:
        transaction.record_write(name)
    return transaction


class TestStreamTransaction:
    def test_records_operations(self):
        transaction = txn("p", 5, reads=["a"], writes=["b"])
        kinds = [(op.kind, op.context_name) for op in transaction.operations]
        assert kinds == [
            (OperationKind.READ, "a"),
            (OperationKind.WRITE, "b"),
        ]
        assert all(op.timestamp == 5 for op in transaction.operations)

    def test_commit(self):
        transaction = txn("p", 1)
        assert not transaction.committed
        transaction.commit()
        assert transaction.committed


class TestTransactionLog:
    def test_in_order_schedule_accepted(self):
        log = TransactionLog()
        log.register(txn("p", 1, writes=["c"]))
        log.register(txn("p", 2, reads=["c"]))
        log.register(txn("p", 2, writes=["c"]))
        log.register(txn("p", 3, reads=["c"]))
        assert log.transactions == 4

    def test_equal_timestamps_allowed(self):
        log = TransactionLog()
        log.register(txn("p", 5, writes=["c"]))
        log.register(txn("p", 5, reads=["c"]))

    def test_write_after_later_operation_rejected(self):
        log = TransactionLog()
        log.register(txn("p", 5, writes=["c"]))
        with pytest.raises(TransactionOrderError, match="write of context"):
            log.register(txn("p", 3, writes=["c"]))

    def test_read_before_earlier_write_rejected(self):
        log = TransactionLog()
        log.register(txn("p", 5, writes=["c"]))
        with pytest.raises(TransactionOrderError, match="read of context"):
            log.register(txn("p", 4, reads=["c"]))

    def test_conflicts_scoped_per_partition(self):
        """Operations on different partitions never conflict."""
        log = TransactionLog()
        log.register(txn("p1", 5, writes=["c"]))
        log.register(txn("p2", 3, writes=["c"]))  # different partition: fine

    def test_conflicts_scoped_per_context(self):
        log = TransactionLog()
        log.register(txn("p", 5, writes=["c1"]))
        log.register(txn("p", 3, writes=["c2"]))  # different value: fine

    def test_reads_do_not_conflict_with_reads(self):
        log = TransactionLog()
        log.register(txn("p", 5, reads=["c"]))
        log.register(txn("p", 3, reads=["c"]))  # read-read is not a conflict

    def test_equal_timestamp_writes_across_partitions_allowed(self):
        """Two partitions writing the same context at the same timestamp is
        not a conflict: transactions are one-per-partition-per-timestamp
        and conflict ordering is scoped within a partition."""
        log = TransactionLog()
        log.register(txn("p1", 5, writes=["c"]))
        log.register(txn("p2", 5, writes=["c"]))
        assert log.transactions == 2

    def test_read_after_write_in_same_transaction_not_flagged(self):
        """A single transaction may write a context and then read it back
        (e.g. a TERMINATE followed by processing in the new context) —
        intra-transaction read-after-write is legal."""
        log = TransactionLog()
        transaction = StreamTransaction(partition="p", timestamp=5)
        transaction.record_write("c")
        transaction.record_read("c")
        log.register(transaction)
        assert log.transactions == 1
        # and a later transaction on the same context remains legal
        log.register(txn("p", 6, reads=["c"]))
