"""Tests for the model visualization (Figure-1-style diagrams)."""

from repro.core.viz import to_dot, to_text
from repro.linearroad.queries import build_traffic_model
from repro.pam.queries import build_pam_model


class TestDot:
    def test_all_contexts_are_nodes(self):
        dot = to_dot(build_traffic_model())
        for name in ("clear", "congestion", "accident"):
            assert f'"{name}"' in dot

    def test_default_context_double_circled(self):
        dot = to_dot(build_traffic_model())
        clear_line = next(
            line for line in dot.splitlines()
            if line.strip().startswith('"clear" [')
        )
        assert "peripheries=2" in clear_line

    def test_transitions_are_edges(self):
        dot = to_dot(build_traffic_model())
        assert '"clear" -> "congestion"' in dot
        assert '"clear" -> "accident"' in dot
        # terminations return to the default context
        assert '"accident" -> "clear"' in dot

    def test_edge_labels_carry_conditions(self):
        dot = to_dot(build_traffic_model(min_cars=12))
        assert "initiate" in dot
        assert "terminate" in dot
        assert "12" in dot  # the threshold appears in a label

    def test_valid_digraph_structure(self):
        dot = to_dot(build_pam_model(), name="pam")
        assert dot.startswith("digraph pam {")
        assert dot.rstrip().endswith("}")
        # balanced quotes on every line
        assert all(line.count('"') % 2 == 0 for line in dot.splitlines())

    def test_workload_sizes_annotated(self):
        dot = to_dot(build_traffic_model())
        assert "queries)" in dot


class TestText:
    def test_mentions_every_context_and_query(self):
        text = to_text(build_traffic_model())
        for name in ("clear", "congestion", "accident"):
            assert f"[{name}]" in text
        assert "derives TollNotification" in text
        assert "initiate congestion" in text
        assert "(default)" in text

    def test_switch_transitions_rendered(self):
        text = to_text(build_pam_model())
        assert "switch vigorous" in text
