"""Tests for context-aware event query descriptors (Definition 3)."""

import pytest

from repro.algebra.expressions import attr
from repro.algebra.pattern import EventMatch
from repro.core.queries import EventQuery, QueryAction
from repro.errors import ModelError
from repro.events.types import EventType

TOLL = EventType.define("Toll", vid="int")


def deriving(name="q", action=QueryAction.INITIATE, target="congestion"):
    return EventQuery(
        name=name,
        action=action,
        pattern=EventMatch("Stats", "s"),
        contexts=("clear",),
        target_context=target,
    )


def processing(name="q", contexts=("congestion",)):
    return EventQuery(
        name=name,
        action=QueryAction.DERIVE,
        pattern=EventMatch("Car", "p"),
        contexts=contexts,
        derive_type=TOLL,
        derive_items=(("vid", attr("vid", "p")),),
    )


class TestValidation:
    def test_deriving_requires_target(self):
        with pytest.raises(ModelError, match="requires a target"):
            EventQuery(
                name="bad",
                action=QueryAction.INITIATE,
                pattern=EventMatch("A"),
            )

    def test_deriving_cannot_derive_events(self):
        with pytest.raises(ModelError, match="cannot also carry"):
            EventQuery(
                name="bad",
                action=QueryAction.TERMINATE,
                pattern=EventMatch("A"),
                target_context="c",
                derive_type=TOLL,
            )

    def test_processing_requires_derive_type(self):
        with pytest.raises(ModelError, match="output event type"):
            EventQuery(
                name="bad",
                action=QueryAction.DERIVE,
                pattern=EventMatch("A"),
            )

    def test_processing_cannot_target_context(self):
        with pytest.raises(ModelError, match="cannot .* target|cannot"):
            EventQuery(
                name="bad",
                action=QueryAction.DERIVE,
                pattern=EventMatch("A"),
                derive_type=TOLL,
                target_context="c",
            )


class TestClassification:
    @pytest.mark.parametrize(
        "action",
        [QueryAction.INITIATE, QueryAction.SWITCH, QueryAction.TERMINATE],
    )
    def test_deriving_actions(self, action):
        query = deriving(action=action)
        assert query.is_deriving
        assert not query.is_processing

    def test_derive_is_processing(self):
        assert processing().is_processing


class TestSignature:
    def test_signature_ignores_name_and_contexts(self):
        a = processing(name="a", contexts=("c1",))
        b = processing(name="b", contexts=("c2", "c3"))
        assert a.signature() == b.signature()

    def test_signature_differs_on_pattern(self):
        a = processing()
        b = EventQuery(
            name="b",
            action=QueryAction.DERIVE,
            pattern=EventMatch("Truck", "p"),
            derive_type=TOLL,
            derive_items=(("vid", attr("vid", "p")),),
        )
        assert a.signature() != b.signature()

    def test_signature_differs_on_where(self):
        a = processing()
        b = EventQuery(
            name="b",
            action=QueryAction.DERIVE,
            pattern=EventMatch("Car", "p"),
            where=attr("vid", "p").gt(1),
            derive_type=TOLL,
            derive_items=(("vid", attr("vid", "p")),),
        )
        assert a.signature() != b.signature()


class TestWithContexts:
    def test_recontexting(self):
        query = processing(contexts=("c1",))
        moved = query.with_contexts(("c2", "c3"))
        assert moved.contexts == ("c2", "c3")
        assert moved.signature() == query.signature()
        assert moved.name == query.name


class TestStr:
    def test_deriving_str(self):
        text = str(deriving())
        assert text.startswith("INITIATE CONTEXT congestion")
        assert "PATTERN Stats s" in text
        assert "CONTEXT clear" in text

    def test_processing_str(self):
        text = str(processing())
        assert text.startswith("DERIVE Toll(p.vid)")
