"""Tests for predicate subsumption (Definition 2 / Figure 7)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.predicates import (
    ThresholdPredicate,
    conjunction_implies,
    implies,
    specs_guaranteed_overlap_by_predicates,
)
from repro.core.windows import WindowSpec
from repro.errors import OptimizerError


def p(op, value, attribute="X"):
    return ThresholdPredicate(attribute, op, value)


class TestSatisfaction:
    @pytest.mark.parametrize(
        "op,threshold,value,expected",
        [
            ("<", 10, 9, True), ("<", 10, 10, False),
            ("<=", 10, 10, True), (">", 10, 11, True),
            (">", 10, 10, False), (">=", 10, 10, True),
            ("=", 10, 10, True), ("=", 10, 9, False),
        ],
    )
    def test_satisfied_by(self, op, threshold, value, expected):
        assert p(op, threshold).satisfied_by(value) is expected

    def test_invalid_operator(self):
        with pytest.raises(OptimizerError, match="unsupported"):
            ThresholdPredicate("X", "~", 1)


class TestImplication:
    def test_figure7_example(self):
        """X > 20 implies X > 10 — so the windows are guaranteed to overlap."""
        assert implies(p(">", 20), p(">", 10))
        assert not implies(p(">", 10), p(">", 20))

    def test_less_than_direction(self):
        assert implies(p("<", 30), p("<", 40))
        assert not implies(p("<", 40), p("<", 30))

    def test_strictness_at_equal_constants(self):
        assert implies(p(">", 10), p(">=", 10))
        assert not implies(p(">=", 10), p(">", 10))
        assert implies(p("<", 10), p("<=", 10))
        assert not implies(p("<=", 10), p("<", 10))

    def test_opposite_directions_never_imply(self):
        assert not implies(p(">", 10), p("<", 100))

    def test_different_attributes_never_imply(self):
        assert not implies(p(">", 20, "X"), p(">", 10, "Y"))

    def test_equality_implies_satisfied_comparisons(self):
        assert implies(p("=", 25), p(">", 10))
        assert not implies(p("=", 5), p(">", 10))

    def test_range_never_implies_equality(self):
        assert not implies(p(">", 10), p("=", 25))

    def test_reflexive(self):
        assert implies(p(">", 10), p(">", 10))

    @given(
        st.sampled_from([">", ">=", "<", "<="]),
        st.integers(-100, 100),
        st.sampled_from([">", ">=", "<", "<="]),
        st.integers(-100, 100),
        st.integers(-200, 200),
    )
    def test_soundness(self, op1, v1, op2, v2, sample):
        """If implies(p, q), every sample satisfying p satisfies q."""
        a, b = p(op1, v1), p(op2, v2)
        if implies(a, b) and a.satisfied_by(sample):
            assert b.satisfied_by(sample)


class TestConjunctions:
    def test_conjunction_implication(self):
        strong = (p(">", 20), p("<", 30))
        weak = (p(">", 10),)
        assert conjunction_implies(strong, weak)
        assert not conjunction_implies(weak, strong)

    def test_empty_consequent_always_implied(self):
        assert conjunction_implies((p(">", 1),), ())


class TestWindowSpecOverlap:
    def test_overlap_from_predicates(self):
        """Figure 7: c2 initiated when X > 20, c1 when X > 10 — whenever a
        c2 window starts, a c1 window holds."""
        c1 = WindowSpec("c1", start=0, end=30, predicates=(p(">", 10),))
        c2 = WindowSpec("c2", start=10, end=40, predicates=(p(">", 20),))
        assert specs_guaranteed_overlap_by_predicates(c2, c1)
        assert not specs_guaranteed_overlap_by_predicates(c1, c2)

    def test_no_predicates_means_no_guarantee(self):
        a = WindowSpec("a", start=0, end=10)
        b = WindowSpec("b", start=0, end=10, predicates=(p(">", 1),))
        assert not specs_guaranteed_overlap_by_predicates(a, b)
