"""Tests for the context bit vector (Section 6.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitvector import ContextBitVector
from repro.errors import UnknownContextError


class TestLayout:
    def test_alphabetical_bit_order(self):
        vector = ContextBitVector(["congestion", "accident", "clear"])
        assert vector.names == ("accident", "clear", "congestion")

    def test_size_is_context_count(self):
        assert ContextBitVector(["a", "b", "c"]).size == 3

    def test_duplicates_collapse(self):
        assert ContextBitVector(["a", "a", "b"]).size == 2

    def test_contains(self):
        vector = ContextBitVector(["a"])
        assert "a" in vector
        assert "z" not in vector

    def test_iteration(self):
        assert list(ContextBitVector(["b", "a"])) == ["a", "b"]


class TestMutation:
    def test_set_and_test(self):
        vector = ContextBitVector(["a", "b"])
        assert vector.set("a", 5) is True
        assert vector.test("a")
        assert not vector.test("b")
        assert vector.time == 5

    def test_set_is_idempotent(self):
        vector = ContextBitVector(["a"])
        vector.set("a", 1)
        assert vector.set("a", 2) is False
        assert vector.test("a")
        assert vector.time == 2  # timestamp still updates

    def test_clear(self):
        vector = ContextBitVector(["a"])
        vector.set("a", 1)
        assert vector.clear("a", 3) is True
        assert not vector.test("a")
        assert vector.clear("a", 4) is False

    def test_multiple_contexts_may_hold(self):
        """Overlapping windows: multiple entries set to 1 (Section 6.2)."""
        vector = ContextBitVector(["accident", "congestion"])
        vector.set("accident", 1)
        vector.set("congestion", 1)
        assert vector.active() == ("accident", "congestion")
        assert vector.count_active() == 2

    def test_clear_all(self):
        vector = ContextBitVector(["a", "b"])
        vector.set("a", 1)
        vector.set("b", 1)
        vector.clear_all(9)
        assert vector.count_active() == 0
        assert vector.time == 9

    def test_unknown_context_rejected(self):
        vector = ContextBitVector(["a"])
        with pytest.raises(UnknownContextError):
            vector.set("zzz", 0)
        with pytest.raises(UnknownContextError):
            vector.test("zzz")

    def test_raw_value_tracks_bits(self):
        vector = ContextBitVector(["a", "b"])
        vector.set("b", 0)
        assert vector.value == 0b10


class TestProperties:
    @given(
        st.lists(
            st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=40
        ),
        st.lists(st.booleans(), min_size=1, max_size=40),
    )
    def test_vector_mirrors_reference_set(self, names, set_flags):
        """The bit vector always agrees with a plain-set reference model."""
        vector = ContextBitVector(["a", "b", "c", "d"])
        reference: set[str] = set()
        for t, (name, flag) in enumerate(zip(names, set_flags)):
            if flag:
                vector.set(name, t)
                reference.add(name)
            else:
                vector.clear(name, t)
                reference.discard(name)
            assert set(vector.active()) == reference
            assert vector.count_active() == len(reference)
