"""Tests for context windows and the runtime window store (Definitions 1-2)."""

import pytest

from repro.core.windows import (
    ContextWindow,
    ContextWindowStore,
    WindowSpec,
    windows_contained,
    windows_guaranteed_overlap,
)
from repro.errors import ModelError, UnknownContextError


class TestContextWindow:
    def test_open_window(self):
        window = ContextWindow("congestion", 10)
        assert window.is_open
        assert window.duration is None
        assert window.holds_at(10)
        assert window.holds_at(1_000_000)
        assert not window.holds_at(9)

    def test_closed_window(self):
        window = ContextWindow("congestion", 10, 50)
        assert not window.is_open
        assert window.duration == 40
        assert window.holds_at(49)
        assert not window.holds_at(50)
        assert not window.holds_at(51)

    def test_boundary_occupancy_is_half_open(self):
        """One consistent convention across the repo: ``[start, end)``.

        The scheduler completes context derivation at ``t`` before any
        processing at ``t``, so the initiating instant is inside the
        window and the terminating instant is outside — the engine never
        routes a batch to a plan of a window at its own termination time.
        """
        window = ContextWindow("c", 10, 20)
        assert window.holds_at(10)  # initiation instant: in
        assert not window.holds_at(20)  # termination instant: out
        assert not window.holds_at(9)
        # consecutive windows partition the timeline: no double occupancy
        successor = ContextWindow("c2", 20, 30)
        for t in (19, 20, 21):
            assert window.holds_at(t) + successor.holds_at(t) == 1


class TestWindowSpec:
    def test_bounds_validated(self):
        with pytest.raises(ModelError, match="start < end"):
            WindowSpec("w", start=5, end=5)

    def test_overlap(self):
        a = WindowSpec("a", start=0, end=10)
        b = WindowSpec("b", start=5, end=15)
        c = WindowSpec("c", start=10, end=20)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open: touching is not overlap

    def test_covers(self):
        spec = WindowSpec("w", start=0, end=10)
        assert spec.covers(0)
        assert not spec.covers(10)

    def test_covers_matches_runtime_occupancy(self):
        """WindowSpec.covers and ContextWindow.holds_at agree at every
        boundary value — the compile-time and runtime views use the same
        ``[start, end)`` convention."""
        spec = WindowSpec("w", start=5, end=15)
        window = ContextWindow("w", 5, 15)
        for t in (4, 5, 6, 14, 15, 16):
            assert spec.covers(t) == window.holds_at(t), f"disagree at t={t}"

    def test_source_names_default_to_own_name(self):
        spec = WindowSpec("solo", start=0, end=10)
        assert spec.source_names == ("solo",)

    def test_source_names_carry_merged_provenance(self):
        spec = WindowSpec("a+b", start=0, end=10, sources=("a", "b"))
        assert spec.source_names == ("a", "b")

    def test_guaranteed_overlap(self):
        outer = WindowSpec("outer", start=0, end=100)
        inner = WindowSpec("inner", start=20, end=50)
        assert windows_guaranteed_overlap(inner, outer)
        assert not windows_guaranteed_overlap(outer, inner)

    def test_containment(self):
        outer = WindowSpec("outer", start=0, end=100)
        inner = WindowSpec("inner", start=20, end=50)
        straddling = WindowSpec("s", start=50, end=150)
        assert windows_contained(inner, outer)
        assert not windows_contained(straddling, outer)


class TestStoreLifecycle:
    def make(self):
        return ContextWindowStore(["congestion", "accident"], "clear")

    def test_default_holds_at_startup(self):
        store = self.make()
        assert store.active_contexts() == ("clear",)

    def test_initiate_evicts_default(self):
        store = self.make()
        assert store.initiate("congestion", 5) is True
        assert store.active_contexts() == ("congestion",)
        # the default window got closed at time 5
        assert store.closed[-1].context_name == "clear"
        assert store.closed[-1].end == 5

    def test_initiate_idempotent(self):
        store = self.make()
        store.initiate("congestion", 5)
        assert store.initiate("congestion", 9) is False
        assert store.open_window("congestion").start == 5

    def test_terminate_restores_default(self):
        store = self.make()
        store.initiate("congestion", 5)
        assert store.terminate("congestion", 12) is True
        assert store.active_contexts() == ("clear",)
        assert store.open_window("clear").start == 12

    def test_terminate_missing_window_noop(self):
        store = self.make()
        assert store.terminate("accident", 3) is False
        assert store.active_contexts() == ("clear",)

    def test_overlapping_windows(self):
        store = self.make()
        store.initiate("congestion", 1)
        store.initiate("accident", 2)
        assert set(store.active_contexts()) == {"accident", "congestion"}
        store.terminate("congestion", 3)
        assert store.active_contexts() == ("accident",)
        assert not store.is_active("clear")

    def test_switch_avoids_default_flicker(self):
        store = ContextWindowStore(["moderate", "vigorous"], "rest")
        store.initiate("moderate", 1)
        store.switch("moderate", "vigorous", 7)
        assert store.active_contexts() == ("vigorous",)
        # the default never opened during the switch
        clear_windows = [
            w for w in store.closed if w.context_name == "rest" and w.start == 7
        ]
        assert clear_windows == []

    def test_unknown_context(self):
        store = self.make()
        with pytest.raises(UnknownContextError):
            store.initiate("nope", 0)
        with pytest.raises(UnknownContextError):
            store.terminate("nope", 0)

    def test_counts(self):
        store = self.make()
        store.initiate("congestion", 1)
        store.initiate("congestion", 2)
        store.terminate("congestion", 3)
        assert store.initiation_count == 1
        assert store.termination_count == 1

    def test_all_windows_history(self):
        store = self.make()
        store.initiate("congestion", 1)
        store.terminate("congestion", 4)
        names = [w.context_name for w in store.all_windows()]
        # closed: clear (evicted), congestion; open: clear (restored)
        assert names == ["clear", "congestion", "clear"]

    def test_vector_and_window_set_agree(self):
        store = self.make()
        operations = [
            ("initiate", "congestion", 1),
            ("initiate", "accident", 2),
            ("terminate", "congestion", 3),
            ("terminate", "accident", 4),
            ("initiate", "congestion", 5),
        ]
        for op, name, t in operations:
            getattr(store, op)(name, t)
            open_names = {
                w.context_name for w in store.all_windows() if w.is_open
            }
            assert set(store.active_contexts()) == open_names
