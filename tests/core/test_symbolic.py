"""Tests for symbolic window ordering from predicate subsumption."""

import pytest

from repro.algebra.expressions import attr
from repro.algebra.pattern import EventMatch
from repro.core.grouping import group_context_windows
from repro.core.predicates import ThresholdPredicate
from repro.core.queries import EventQuery, QueryAction
from repro.core.symbolic import SymbolicWindow, infer_window_specs
from repro.errors import OptimizerError
from repro.events.types import EventType

OUT = EventType.define("Out", n="int")


def p(op, value):
    return ThresholdPredicate("X", op, value)


def query(name, threshold):
    return EventQuery(
        name=name,
        action=QueryAction.DERIVE,
        pattern=EventMatch("A", "a"),
        where=attr("n", "a").gt(threshold),
        derive_type=OUT,
        derive_items=(("n", attr("n", "a")),),
    )


Q1, Q2, Q3 = query("Q1", 1), query("Q2", 2), query("Q3", 3)


def figure7_windows():
    """Figure 7: c1 initiated at X>10 terminated at X<30 with {Q1, Q3};
    c2 initiated at X>20 terminated at X<40 with {Q1, Q2}."""
    return [
        SymbolicWindow(
            "c1", initiate=(p(">", 10),), terminate=(p("<", 30),),
            queries=(Q1, Q3),
        ),
        SymbolicWindow(
            "c2", initiate=(p(">", 20),), terminate=(p("<", 40),),
            queries=(Q1, Q2),
        ),
    ]


class TestFigure7Ordering:
    def test_start_order_inferred(self):
        specs = {s.name: s for s in infer_window_specs(figure7_windows())}
        # X>20 implies X>10: c1 starts no later than c2
        assert specs["c1"].start < specs["c2"].start

    def test_end_order_inferred(self):
        specs = {s.name: s for s in infer_window_specs(figure7_windows())}
        # X<30 implies X<40: c1 ends no later than c2
        assert specs["c1"].end < specs["c2"].end

    def test_feeds_grouping_with_figure7_result(self):
        """The inferred bounds reproduce Figure 7's split: three grouped
        windows with workloads {Q1,Q3}, {Q1,Q2,Q3}, {Q1,Q2}."""
        grouped = group_context_windows(infer_window_specs(figure7_windows()))
        workloads = [
            frozenset(q.name for q in window.queries) for window in grouped
        ]
        assert workloads == [
            frozenset({"Q1", "Q3"}),
            frozenset({"Q1", "Q2", "Q3"}),
            frozenset({"Q1", "Q2"}),
        ]


class TestGeneralProperties:
    def test_empty(self):
        assert infer_window_specs([]) == []

    def test_duplicate_names_rejected(self):
        windows = [
            SymbolicWindow("w", (p(">", 1),), (p("<", 2),)),
            SymbolicWindow("w", (p(">", 3),), (p("<", 4),)),
        ]
        with pytest.raises(OptimizerError, match="duplicate"):
            infer_window_specs(windows)

    def test_incomparable_windows_share_layers(self):
        """Predicates over different attributes imply nothing — both
        windows land on the same start layer."""
        windows = [
            SymbolicWindow("a", (ThresholdPredicate("X", ">", 1),), (p("<", 9),)),
            SymbolicWindow("b", (ThresholdPredicate("Y", ">", 1),), (p("<", 9),)),
        ]
        specs = {s.name: s for s in infer_window_specs(windows)}
        assert specs["a"].start == specs["b"].start

    def test_three_level_nesting(self):
        windows = [
            SymbolicWindow("outer", (p(">", 10),), (p("<", 90),), (Q1,)),
            SymbolicWindow("middle", (p(">", 20),), (p("<", 80),), (Q2,)),
            SymbolicWindow("inner", (p(">", 30),), (p("<", 70),), (Q3,)),
        ]
        specs = {s.name: s for s in infer_window_specs(windows)}
        assert specs["outer"].start < specs["middle"].start < specs["inner"].start
        assert specs["inner"].end < specs["middle"].end < specs["outer"].end
        grouped = group_context_windows(infer_window_specs(windows))
        # 5 grouped windows: onion layers in, peak, and out
        assert len(grouped) == 5
        peak = grouped[2]
        assert {q.name for q in peak.queries} == {"Q1", "Q2", "Q3"}

    def test_all_starts_precede_all_ends(self):
        specs = infer_window_specs(figure7_windows())
        max_start = max(s.start for s in specs)
        min_end = min(s.end for s in specs)
        assert max_start < min_end

    def test_predicates_carried_into_specs(self):
        specs = infer_window_specs(figure7_windows())
        assert all(s.predicates for s in specs)
