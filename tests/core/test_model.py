"""Tests for the CAESAR model (Definitions 1 and 4)."""

import pytest

from repro.core.model import CaesarModel, ContextType
from repro.core.queries import QueryAction
from repro.errors import ModelError, UnknownContextError
from repro.language import parse_query


def traffic_model():
    model = CaesarModel(default_context="clear")
    model.add_context("congestion")
    model.add_context("accident")
    model.add_query(
        parse_query(
            "INITIATE CONTEXT congestion PATTERN Stats s WHERE s.cars > 50 "
            "CONTEXT clear",
            name="detect_congestion",
        )
    )
    model.add_query(
        parse_query(
            "TERMINATE CONTEXT congestion PATTERN Stats s WHERE s.cars < 10 "
            "CONTEXT congestion",
            name="end_congestion",
        )
    )
    model.add_query(
        parse_query(
            "INITIATE CONTEXT accident PATTERN Accident "
            "CONTEXT clear, congestion",
            name="detect_accident",
        )
    )
    model.add_query(
        parse_query(
            "TERMINATE CONTEXT accident PATTERN Cleared CONTEXT accident",
            name="accident_cleared",
        )
    )
    model.add_query(
        parse_query(
            "DERIVE Toll(p.vid) PATTERN Car p CONTEXT congestion",
            name="toll",
        )
    )
    return model


class TestConstruction:
    def test_default_context_exists(self):
        model = CaesarModel(default_context="clear")
        assert "clear" in model
        assert model.default_context == "clear"

    def test_add_context_idempotent(self):
        model = CaesarModel()
        first = model.add_context("c")
        second = model.add_context("c")
        assert first is second

    def test_invalid_context_name(self):
        with pytest.raises(ModelError, match="invalid context"):
            ContextType("not a name!")

    def test_query_attached_to_all_its_contexts(self):
        model = traffic_model()
        assert any(
            q.name == "detect_accident"
            for q in model.context("clear").deriving_queries
        )
        assert any(
            q.name == "detect_accident"
            for q in model.context("congestion").deriving_queries
        )

    def test_query_without_context_goes_to_default(self):
        model = CaesarModel(default_context="d")
        model.add_query(parse_query("DERIVE X(a.n) PATTERN A a", name="q"))
        assert model.context("d").processing_queries[0].name == "q"

    def test_unknown_context_clause_rejected(self):
        model = CaesarModel()
        with pytest.raises(UnknownContextError):
            model.add_query(
                parse_query("DERIVE X(a.n) PATTERN A a CONTEXT nope", name="q")
            )

    def test_unknown_target_context_rejected(self):
        model = CaesarModel()
        with pytest.raises(UnknownContextError):
            model.add_query(
                parse_query("INITIATE CONTEXT nope PATTERN A a", name="q")
            )

    def test_duplicate_query_name_in_context_rejected(self):
        model = CaesarModel()
        model.add_query(parse_query("DERIVE X(a.n) PATTERN A a", name="q"))
        with pytest.raises(ModelError, match="already has a query"):
            model.add_query(parse_query("DERIVE Y(a.n) PATTERN A a", name="q"))


class TestInspection:
    def test_queries_deduplicated_by_name(self):
        model = traffic_model()
        names = [q.name for q in model.queries()]
        assert len(names) == len(set(names)) == 5

    def test_transitions(self):
        model = traffic_model()
        edges = {
            (e.from_context, e.to_context, e.kind) for e in model.transitions()
        }
        assert ("clear", "congestion", QueryAction.INITIATE) in edges
        assert ("congestion", "accident", QueryAction.INITIATE) in edges
        assert ("accident", "accident", QueryAction.TERMINATE) in edges

    def test_describe_mentions_all_contexts(self):
        text = traffic_model().describe()
        for name in ("clear", "congestion", "accident"):
            assert f"context {name}:" in text


class TestQuerySetTranslation:
    def test_contexts_become_mandatory(self):
        """Phase 1 (Section 4.2): every query carries explicit contexts."""
        model = traffic_model()
        for query in model.to_query_set():
            assert query.contexts

    def test_multi_context_query_merged(self):
        model = traffic_model()
        by_name = {q.name: q for q in model.to_query_set()}
        assert set(by_name["detect_accident"].contexts) == {
            "clear", "congestion",
        }


class TestValidation:
    def test_valid_model_passes(self):
        traffic_model().validate()

    def test_unreachable_context_rejected(self):
        model = CaesarModel(default_context="clear")
        model.add_context("island")
        model.add_query(
            parse_query(
                "DERIVE X(a.n) PATTERN A a CONTEXT island", name="dead"
            )
        )
        with pytest.raises(ModelError, match="unreachable"):
            model.validate()
