"""Tests for the context window grouping algorithm (Listing 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import (
    GroupedWindow,
    group_context_windows,
    grouped_windows_for_source,
    total_covered_length,
)
from repro.core.queries import EventQuery, QueryAction
from repro.core.windows import WindowSpec
from repro.algebra.pattern import EventMatch
from repro.algebra.expressions import attr
from repro.errors import OptimizerError
from repro.events.types import EventType

OUT = EventType.define("Out", n="int")


def query(name, threshold=0):
    """Distinct thresholds give distinct work signatures."""
    return EventQuery(
        name=name,
        action=QueryAction.DERIVE,
        pattern=EventMatch("A", "a"),
        where=attr("n", "a").gt(threshold),
        derive_type=OUT,
        derive_items=(("n", attr("n", "a")),),
    )


Q1 = query("Q1", 1)
Q2 = query("Q2", 2)
Q3 = query("Q3", 3)


class TestFigure7:
    """The paper's worked example: w_c1 [10, 30) with {Q1, Q3} and
    w_c2 [20, 40) with {Q1, Q2}."""

    def setup_method(self):
        self.specs = [
            WindowSpec("c1", start=10, end=30, queries=(Q1, Q3)),
            WindowSpec("c2", start=20, end=40, queries=(Q1, Q2)),
        ]
        self.grouped = group_context_windows(self.specs)

    def test_three_grouped_windows(self):
        assert len(self.grouped) == 3
        assert [(w.start, w.end) for w in self.grouped] == [
            (10, 20), (20, 30), (30, 40),
        ]

    def test_workloads(self):
        first, middle, last = self.grouped
        assert {q.name for q in first.queries} == {"Q1", "Q3"}
        assert {q.name for q in middle.queries} == {"Q1", "Q2", "Q3"}
        assert {q.name for q in last.queries} == {"Q1", "Q2"}

    def test_shared_query_not_duplicated_in_overlap(self):
        middle = self.grouped[1]
        q1_count = sum(1 for q in middle.queries if q.signature() == Q1.signature())
        assert q1_count == 1

    def test_sources(self):
        first, middle, last = self.grouped
        assert first.source_names == ("c1",)
        assert set(middle.source_names) == {"c1", "c2"}
        assert last.source_names == ("c2",)

    def test_grouped_windows_for_source(self):
        c1_windows = grouped_windows_for_source(self.grouped, "c1")
        assert [(w.start, w.end) for w in c1_windows] == [(10, 20), (20, 30)]


class TestSpecialCases:
    def test_empty_input(self):
        assert group_context_windows([]) == []

    def test_non_overlapping_windows_unchanged(self):
        specs = [
            WindowSpec("a", start=0, end=10, queries=(Q1,)),
            WindowSpec("b", start=20, end=30, queries=(Q2,)),
        ]
        grouped = group_context_windows(specs)
        assert [(w.start, w.end) for w in grouped] == [(0, 10), (20, 30)]
        assert grouped[0].source_names == ("a",)

    def test_identical_windows_merged(self):
        """Listing 1, line 6: identical windows keep one merged workload."""
        specs = [
            WindowSpec("a", start=0, end=10, queries=(Q1,)),
            WindowSpec("b", start=0, end=10, queries=(Q2,)),
            # overlap partner forces them through the grouping path
            WindowSpec("c", start=5, end=15, queries=(Q3,)),
        ]
        grouped = group_context_windows(specs)
        assert [(w.start, w.end) for w in grouped] == [(0, 5), (5, 10), (10, 15)]
        assert {q.name for q in grouped[1].queries} == {"Q1", "Q2", "Q3"}

    def test_duplicate_queries_dropped(self):
        """Lines 20-22: a query shared by overlapping windows appears once."""
        clone_of_q1 = query("Q1_clone", 1)  # same signature as Q1
        specs = [
            WindowSpec("a", start=0, end=20, queries=(Q1,)),
            WindowSpec("b", start=10, end=30, queries=(clone_of_q1,)),
        ]
        grouped = group_context_windows(specs)
        middle = next(w for w in grouped if w.start == 10)
        assert len(middle.queries) == 1

    def test_containment(self):
        specs = [
            WindowSpec("outer", start=0, end=100, queries=(Q1,)),
            WindowSpec("inner", start=40, end=60, queries=(Q2,)),
        ]
        grouped = group_context_windows(specs)
        assert [(w.start, w.end) for w in grouped] == [
            (0, 40), (40, 60), (60, 100),
        ]
        assert {q.name for q in grouped[1].queries} == {"Q1", "Q2"}

    def test_duplicate_names_rejected(self):
        specs = [
            WindowSpec("same", start=0, end=10),
            WindowSpec("same", start=5, end=15),
        ]
        with pytest.raises(OptimizerError, match="duplicate window spec"):
            group_context_windows(specs)

    def test_total_covered_length(self):
        grouped = [
            GroupedWindow(0, 10, (), ("a",)),
            GroupedWindow(20, 25, (), ("b",)),
        ]
        assert total_covered_length(grouped) == 15

    def test_plus_in_window_name_survives_merging(self):
        """Regression: merged provenance used to be encoded by joining
        names with "+" and re-splitting, so a user window literally named
        with a "+" broke attribution (and thereby partial-match retention
        across its grouped splits)."""
        specs = [
            WindowSpec("rush+hour", start=0, end=10, queries=(Q1,)),
            WindowSpec("night", start=0, end=10, queries=(Q2,)),
            # overlap partner forces the merge path
            WindowSpec("other", start=5, end=15, queries=(Q3,)),
        ]
        grouped = group_context_windows(specs)
        rush = grouped_windows_for_source(grouped, "rush+hour")
        assert [(w.start, w.end) for w in rush] == [(0, 5), (5, 10)]
        for window in rush:
            assert "rush+hour" in window.source_names
            assert "rush" not in window.source_names
            assert "hour" not in window.source_names
        # the other merged window is attributed independently
        night = grouped_windows_for_source(grouped, "night")
        assert [(w.start, w.end) for w in night] == [(0, 5), (5, 10)]

    def test_plus_named_window_without_merge(self):
        specs = [
            WindowSpec("a+b", start=0, end=20, queries=(Q1,)),
            WindowSpec("c", start=10, end=30, queries=(Q2,)),
        ]
        grouped = group_context_windows(specs)
        assert [
            (w.start, w.end) for w in grouped_windows_for_source(grouped, "a+b")
        ] == [(0, 10), (10, 20)]
        assert grouped_windows_for_source(grouped, "a") == []
        assert grouped_windows_for_source(grouped, "b") == []


# ---------------------------------------------------------------------------
# Property-based validation of the Listing 1 post-conditions
# ---------------------------------------------------------------------------

ALL_QUERIES = [query(f"q{i}", i) for i in range(6)]


@st.composite
def window_specs(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    specs = []
    for index in range(count):
        start = draw(st.integers(min_value=0, max_value=80))
        length = draw(st.integers(min_value=1, max_value=40))
        query_indexes = draw(
            st.sets(st.integers(0, len(ALL_QUERIES) - 1), min_size=1, max_size=4)
        )
        specs.append(
            WindowSpec(
                f"w{index}",
                start=start,
                end=start + length,
                queries=tuple(ALL_QUERIES[i] for i in sorted(query_indexes)),
            )
        )
    return specs


class TestGroupingProperties:
    @given(window_specs())
    @settings(max_examples=150)
    def test_grouped_windows_never_overlap(self, specs):
        grouped = group_context_windows(specs)
        for i, a in enumerate(grouped):
            for b in grouped[i + 1 :]:
                assert a.end <= b.start or b.end <= a.start

    @given(window_specs())
    @settings(max_examples=150)
    def test_coverage_preserved(self, specs):
        """The union of grouped windows equals the union of the inputs."""
        grouped = group_context_windows(specs)
        horizon = max(s.end for s in specs) + 1
        for t in range(0, horizon):
            in_original = any(s.covers(t) for s in specs)
            in_grouped = any(w.covers(t) for w in grouped)
            assert in_original == in_grouped, f"coverage differs at t={t}"

    @given(window_specs())
    @settings(max_examples=150)
    def test_workload_is_union_of_covering_windows(self, specs):
        grouped = group_context_windows(specs)
        for window in grouped:
            t = window.start
            expected = {
                q.signature() for s in specs if s.covers(t) for q in s.queries
            }
            actual = {q.signature() for q in window.queries}
            assert actual == expected

    @given(window_specs())
    @settings(max_examples=150)
    def test_no_duplicate_queries_within_group(self, specs):
        for window in group_context_windows(specs):
            signatures = [q.signature() for q in window.queries]
            assert len(signatures) == len(set(signatures))

    @given(window_specs())
    @settings(max_examples=150)
    def test_sweep_matches_quadratic_reference(self, specs):
        """The active-set sweep is a pure optimization: byte-identical
        output (order, bounds, workloads, provenance) to the quadratic
        rescan it replaced."""
        assert group_context_windows(specs) == _reference_grouping(specs)

    @given(window_specs())
    @settings(max_examples=150)
    def test_source_attribution_is_exact(self, specs):
        """A grouped window names source ``s`` iff spec ``s`` covers it."""
        by_name = {s.name: s for s in specs}
        for window in group_context_windows(specs):
            for name, spec in by_name.items():
                covered = spec.covers(window.start) and window.end <= spec.end
                assert (name in window.source_names) == covered


def _reference_grouping(specs):
    """The pre-optimization quadratic implementation of Listing 1's sweep,
    kept as the differential oracle for the active-set version."""
    from repro.core.grouping import _dedup_queries, _merge_identical
    from repro.errors import OptimizerError

    if not specs:
        return []
    names = [s.name for s in specs]
    if len(names) != len(set(names)):
        raise OptimizerError("duplicate window spec names")
    overlapping, grouped = [], []
    for spec in specs:
        if any(spec.overlaps(other) for other in specs if other is not spec):
            overlapping.append(spec)
        else:
            grouped.append(
                GroupedWindow(
                    start=spec.start,
                    end=spec.end,
                    queries=_dedup_queries(spec.queries),
                    source_names=(spec.name,),
                )
            )
    overlapping.sort(key=lambda s: (s.start, s.end))
    overlapping = _merge_identical(overlapping)
    bounds = sorted({s.start for s in overlapping} | {s.end for s in overlapping})
    for previous, nxt in zip(bounds, bounds[1:]):
        active = [s for s in overlapping if s.start <= previous and nxt <= s.end]
        if not active:
            continue
        grouped.append(
            GroupedWindow(
                start=previous,
                end=nxt,
                queries=_dedup_queries(
                    [q for spec in active for q in spec.queries]
                ),
                source_names=tuple(
                    name for spec in active for name in spec.source_names
                ),
            )
        )
    grouped.sort(key=lambda w: (w.start, w.end))
    return grouped
