"""Tests for the Linear Road output validator."""

import pytest

from repro.linearroad.generator import (
    LinearRoadConfig,
    generate_stream,
    paper_timeline_schedules,
    uniform_congestion_windows,
)
from repro.linearroad.queries import build_traffic_model, segment_partitioner
from repro.linearroad.validation import validate_report
from repro.runtime.baseline import ContextIndependentEngine
from repro.runtime.engine import CaesarEngine


@pytest.fixture(scope="module")
def config():
    return paper_timeline_schedules(
        LinearRoadConfig(
            num_roads=1, segments_per_road=2, duration_minutes=12, seed=7
        )
    )


class TestEngineValidates:
    def test_caesar_engine_outputs_validate(self, config):
        """The context-aware engine's toll notifications exactly match the
        independent recomputation from the raw stream — the Linear Road
        correctness bar."""
        engine = CaesarEngine(
            build_traffic_model(),
            partition_by=segment_partitioner,
            retention=120,
        )
        stream = generate_stream(config)
        report = engine.run(stream)
        result = validate_report(generate_stream(config), report)
        assert result.correct, result.summary()
        assert result.expected_tolls > 0

    def test_baseline_outputs_validate(self, config):
        engine = ContextIndependentEngine(
            build_traffic_model(),
            partition_by=segment_partitioner,
            retention=120,
        )
        report = engine.run(generate_stream(config))
        result = validate_report(generate_stream(config), report)
        assert result.correct, result.summary()

    def test_uniform_windows_validate(self):
        cfg = uniform_congestion_windows(
            LinearRoadConfig(
                num_roads=1, segments_per_road=2, duration_minutes=10,
                cars_congested=15, seed=19,
            ),
            count=2,
            length_seconds=120,
        )
        engine = CaesarEngine(
            build_traffic_model(min_cars=6),
            partition_by=segment_partitioner,
            retention=120,
        )
        report = engine.run(generate_stream(cfg))
        result = validate_report(generate_stream(cfg), report)
        assert result.correct, result.summary()


class TestValidationDetectsErrors:
    def test_detects_missing_tolls(self, config):
        """Feeding the validator a report with outputs removed flags them."""
        engine = CaesarEngine(
            build_traffic_model(),
            partition_by=segment_partitioner,
            retention=120,
        )
        report = engine.run(generate_stream(config))
        # sabotage: drop half the toll notifications
        tolls = [
            e for e in report.outputs if e.type_name == "TollNotification"
        ]
        assert tolls
        report.outputs = [
            e for e in report.outputs
            if e.type_name != "TollNotification"
        ] + tolls[::2]
        result = validate_report(generate_stream(config), report)
        assert not result.correct
        assert len(result.missing) == len(tolls) - len(tolls[::2])
        assert "FAIL" in result.summary()

    def test_latency_verdict(self, config):
        engine = CaesarEngine(
            build_traffic_model(),
            partition_by=segment_partitioner,
            retention=120,
            seconds_per_cost_unit=10.0,  # absurd scale: guaranteed violation
        )
        report = engine.run(generate_stream(config))
        result = validate_report(generate_stream(config), report)
        assert not result.latency_ok
        assert not result.passed
