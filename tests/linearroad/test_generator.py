"""Tests for the experiment-level Linear Road stream generation."""

import pytest

from repro.linearroad.generator import (
    LinearRoadConfig,
    coverage_fraction,
    generate_stream,
    paper_timeline_schedules,
    randomized_schedules,
    skewed_congestion_windows,
    uniform_congestion_windows,
)


def small_config(**overrides):
    defaults = dict(
        num_roads=1, segments_per_road=2, duration_minutes=10, seed=5
    )
    defaults.update(overrides)
    return LinearRoadConfig(**defaults)


class TestGeneration:
    def test_stream_is_ordered_and_nonempty(self):
        stream = generate_stream(small_config())
        assert len(stream) > 0
        times = [e.timestamp for e in stream]
        assert times == sorted(times)

    def test_duration_seconds(self):
        assert small_config(duration_minutes=3).duration_seconds == 180


class TestPaperTimeline:
    def test_schedules_scale_with_duration(self):
        config = paper_timeline_schedules(small_config(duration_minutes=18))
        duration = config.duration_seconds
        accident = config.accident_schedule[0]
        congestion = config.congestion_schedule[0]
        assert accident.start == round(duration * 30 / 180)
        assert accident.end == round(duration * 50 / 180)
        assert congestion.start == round(duration * 70 / 180)
        assert congestion.end == duration

    def test_every_segment_scheduled(self):
        config = paper_timeline_schedules(small_config())
        assert len(config.accident_schedule) == 2
        assert len(config.congestion_schedule) == 2


class TestUniformWindows:
    def test_count_and_length(self):
        config = uniform_congestion_windows(
            small_config(), count=3, length_seconds=60
        )
        per_segment = [
            w for w in config.congestion_schedule if w.seg == 0
        ]
        assert len(per_segment) == 3
        assert all(w.length == 60 for w in per_segment)

    def test_windows_equally_spaced(self):
        config = uniform_congestion_windows(
            small_config(), count=3, length_seconds=60
        )
        starts = sorted(w.start for w in config.congestion_schedule if w.seg == 0)
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert len(set(gaps)) == 1

    def test_zero_count(self):
        config = uniform_congestion_windows(
            small_config(), count=0, length_seconds=60
        )
        assert config.congestion_schedule == ()

    def test_coverage_fraction(self):
        config = uniform_congestion_windows(
            small_config(duration_minutes=10), count=2, length_seconds=60
        )
        assert coverage_fraction(config) == pytest.approx(120 / 600)


class TestSkewedWindows:
    def test_positive_skew_clusters_early(self):
        config = skewed_congestion_windows(
            small_config(duration_minutes=30),
            count=5, length_seconds=60, skew="positive",
        )
        starts = [w.start for w in config.congestion_schedule if w.seg == 0]
        midpoint = config.duration_seconds / 2
        assert sum(1 for s in starts if s < midpoint) >= 4

    def test_negative_skew_clusters_late(self):
        config = skewed_congestion_windows(
            small_config(duration_minutes=30),
            count=5, length_seconds=60, skew="negative",
        )
        starts = [w.start for w in config.congestion_schedule if w.seg == 0]
        midpoint = config.duration_seconds / 2
        assert sum(1 for s in starts if s >= midpoint) >= 4

    def test_invalid_skew(self):
        with pytest.raises(ValueError, match="skew"):
            skewed_congestion_windows(
                small_config(), count=1, length_seconds=60, skew="sideways"
            )


class TestRandomizedSchedules:
    def test_deterministic_per_seed(self):
        a = randomized_schedules(small_config(), seed=4)
        b = randomized_schedules(small_config(), seed=4)
        assert a.congestion_schedule == b.congestion_schedule
        assert a.accident_schedule == b.accident_schedule

    def test_probability_extremes(self):
        none = randomized_schedules(
            small_config(), congestion_probability=0.0,
            accident_probability=0.0,
        )
        assert none.congestion_schedule == ()
        all_segments = randomized_schedules(
            small_config(), congestion_probability=1.0,
            accident_probability=1.0,
        )
        assert len(all_segments.congestion_schedule) == 2


class TestCoverage:
    def test_overlapping_windows_not_double_counted(self):
        from repro.linearroad.simulator import SegmentInterval
        from dataclasses import replace

        config = replace(
            small_config(duration_minutes=10),
            congestion_schedule=(
                SegmentInterval(0, 0, 0, 0, 300),
                SegmentInterval(0, 0, 0, 200, 400),
            ),
        )
        # segment 0 covered [0, 400) = 400s of 600; segment 1 uncovered
        assert coverage_fraction(config) == pytest.approx(400 / 1200)

    def test_empty_schedule(self):
        assert coverage_fraction(small_config()) == 0.0
