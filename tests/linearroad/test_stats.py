"""Tests for the engine-side statistics pipeline (raw reports only)."""

from dataclasses import replace

import pytest

from repro.events.stream import EventStream
from repro.linearroad.generator import (
    LinearRoadConfig,
    generate_stream,
    paper_timeline_schedules,
)
from repro.linearroad.queries import build_traffic_model, segment_partitioner
from repro.linearroad.simulator import TrafficSimulator
from repro.linearroad.stats import segment_stats_aggregator
from repro.runtime.engine import CaesarEngine


def raw_stream(config):
    """The stream without simulator-emitted statistics."""
    sim_config = replace(config.to_simulation_config(), emit_stats=False)
    return EventStream(TrafficSimulator(sim_config).events())


@pytest.fixture(scope="module")
def config():
    return paper_timeline_schedules(
        LinearRoadConfig(
            num_roads=1, segments_per_road=2, duration_minutes=12, seed=7
        )
    )


class TestEngineDerivedStats:
    def test_raw_stream_has_no_stats(self, config):
        stream = raw_stream(config)
        assert all(e.type_name != "SegmentStats" for e in stream)

    def test_contexts_derived_from_raw_reports(self, config):
        engine = CaesarEngine(
            build_traffic_model(),
            preprocessors=(segment_stats_aggregator(),),
            partition_by=segment_partitioner,
            retention=120,
        )
        report = engine.run(raw_stream(config))
        names = {
            w.context_name
            for windows in report.windows_by_partition.values()
            for w in windows
        }
        assert {"clear", "congestion", "accident"} <= names
        assert report.outputs_by_type.get("TollNotification", 0) > 0
        assert report.outputs_by_type.get("AccidentWarning", 0) > 0

    def test_matches_simulator_stats_contexts(self, config):
        """Engine-derived and simulator-emitted statistics detect the same
        context *sequence* (boundaries may differ by one detection lag)."""
        with_sim_stats = CaesarEngine(
            build_traffic_model(),
            partition_by=segment_partitioner,
            retention=120,
        ).run(generate_stream(config))
        with_engine_stats = CaesarEngine(
            build_traffic_model(),
            preprocessors=(segment_stats_aggregator(),),
            partition_by=segment_partitioner,
            retention=120,
        ).run(raw_stream(config))
        for key in with_sim_stats.windows_by_partition:
            sim_sequence = [
                w.context_name
                for w in with_sim_stats.windows_by_partition[key]
            ]
            engine_sequence = [
                w.context_name
                for w in with_engine_stats.windows_by_partition[key]
            ]
            assert sim_sequence == engine_sequence

    def test_no_preprocessor_no_contexts(self, config):
        """Sanity: without the aggregation stage, the raw stream never
        triggers a context transition (the deriving queries consume stats)."""
        engine = CaesarEngine(
            build_traffic_model(),
            partition_by=segment_partitioner,
            retention=120,
        )
        report = engine.run(raw_stream(config))
        names = {
            w.context_name
            for windows in report.windows_by_partition.values()
            for w in windows
        }
        assert names == {"clear"}
