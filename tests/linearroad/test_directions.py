"""Tests for bidirectional expressways."""

from repro.linearroad.generator import LinearRoadConfig, generate_stream
from repro.linearroad.queries import build_traffic_model, segment_partitioner
from repro.linearroad.simulator import SegmentInterval
from repro.runtime.engine import CaesarEngine
from dataclasses import replace


def two_direction_config():
    return LinearRoadConfig(
        num_roads=1,
        segments_per_road=2,
        directions=2,
        duration_minutes=8,
        seed=13,
    )


class TestBidirectional:
    def test_both_directions_emit(self):
        stream = generate_stream(two_direction_config())
        directions = {
            e["dir"] for e in stream if e.type_name == "PositionReport"
        }
        assert directions == {0, 1}

    def test_directions_are_independent_partitions(self):
        """Congestion scheduled on direction 0 must not open windows on
        direction 1 of the same segment."""
        config = two_direction_config()
        duration = config.duration_seconds
        schedule = (SegmentInterval(0, 0, 0, 120, duration),)
        config = replace(
            config, congestion_schedule=schedule, cars_congested=15
        )
        engine = CaesarEngine(
            build_traffic_model(min_cars=5),
            partition_by=segment_partitioner,
            retention=120,
        )
        report = engine.run(generate_stream(config))
        congested_dir0 = any(
            w.context_name == "congestion"
            for w in report.windows_by_partition[(0, 0, 0)]
        )
        congested_dir1 = any(
            w.context_name == "congestion"
            for w in report.windows_by_partition.get((0, 1, 0), [])
        )
        assert congested_dir0
        assert not congested_dir1

    def test_double_the_partitions(self):
        engine = CaesarEngine(
            build_traffic_model(),
            partition_by=segment_partitioner,
            retention=120,
        )
        report = engine.run(generate_stream(two_direction_config()))
        assert len(report.windows_by_partition) == 4  # 2 segs × 2 dirs
