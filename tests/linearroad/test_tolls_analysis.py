"""Tests for toll computation and the analysis helpers."""

import pytest

from repro.events.event import Event
from repro.events.types import EventType
from repro.linearroad.analysis import (
    compute_l_factor,
    events_per_minute,
    events_per_segment,
)
from repro.linearroad.tolls import is_tollable, toll_amount, toll_for_segment
from repro.runtime.engine import EngineReport


class TestTolls:
    def test_toll_formula(self):
        assert toll_amount(150) == 0
        assert toll_amount(151) == 2
        assert toll_amount(160) == 2 * 100

    def test_negative_cars_rejected(self):
        with pytest.raises(ValueError):
            toll_amount(-1)

    def test_tollable_conditions(self):
        assert is_tollable(60, 30.0)
        assert not is_tollable(40, 30.0)  # too few cars
        assert not is_tollable(60, 45.0)  # too fast
        assert not is_tollable(60, 30.0, accident_nearby=True)

    def test_toll_for_segment(self):
        assert toll_for_segment(60, 30.0) == toll_amount(60)
        assert toll_for_segment(60, 50.0) == 0
        assert toll_for_segment(60, 30.0, accident_nearby=True) == 0

    def test_custom_thresholds(self):
        assert is_tollable(20, 30.0, min_cars=10)
        assert not is_tollable(20, 30.0, min_cars=30)


EV = EventType.define("Ev", seg="int", xway="int", dir="int")


def ev(t, seg, xway=0, direction=0):
    return Event(EV, t, {"seg": seg, "xway": xway, "dir": direction})


class TestDistributions:
    def test_events_per_segment(self):
        events = [ev(0, 0), ev(0, 0), ev(0, 1), ev(0, 5, xway=1)]
        counts = events_per_segment(events, xway=0)
        assert counts[0]["Ev"] == 2
        assert counts[1]["Ev"] == 1
        assert 5 not in counts  # other expressway excluded

    def test_events_per_minute(self):
        events = [ev(0, 0), ev(59, 0), ev(60, 0), ev(125, 0)]
        counts = events_per_minute(events)
        assert counts[0]["Ev"] == 2
        assert counts[1]["Ev"] == 1
        assert counts[2]["Ev"] == 1

    def test_events_per_minute_segment_filter(self):
        events = [ev(0, 0), ev(0, 3)]
        counts = events_per_minute(events, seg=3)
        assert counts[0]["Ev"] == 1


def fake_report(max_latency):
    return EngineReport(
        outputs=[],
        events_processed=0,
        batches=0,
        cost_units=0.0,
        wall_seconds=0.0,
        max_latency=max_latency,
        mean_latency=0.0,
    )


class TestLFactor:
    def test_l_factor_found(self):
        latencies = {1: 1.0, 2: 2.0, 3: 4.0, 4: 7.0}

        l_factor, curve = compute_l_factor(
            lambda roads: fake_report(latencies[roads]),
            max_roads=4,
            constraint_seconds=5.0,
        )
        assert l_factor == 3
        # the search stops right after the first violation
        assert set(curve) == {1, 2, 3, 4}

    def test_all_roads_within_constraint(self):
        l_factor, _ = compute_l_factor(
            lambda roads: fake_report(0.5), max_roads=3
        )
        assert l_factor == 3

    def test_immediate_violation(self):
        l_factor, curve = compute_l_factor(
            lambda roads: fake_report(100.0), max_roads=5
        )
        assert l_factor == 0
        assert list(curve) == [1]
