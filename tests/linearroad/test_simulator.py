"""Tests for the Linear Road traffic micro-simulator."""

import pytest

from repro.errors import CaesarError
from repro.events.stream import EventStream
from repro.linearroad.simulator import (
    SegmentInterval,
    SimulationConfig,
    TrafficSimulator,
)


def simulate(**overrides):
    defaults = dict(
        num_xways=1,
        segments_per_xway=2,
        duration_seconds=600,
        seed=3,
    )
    defaults.update(overrides)
    config = SimulationConfig(**defaults)
    return config, list(TrafficSimulator(config).events())


class TestBasicStream:
    def test_events_are_timestamp_ordered(self):
        _, events = simulate()
        times = [e.timestamp for e in events]
        assert times == sorted(times)
        EventStream(events)  # does not raise

    def test_reports_every_interval(self):
        config, events = simulate()
        reports = [e for e in events if e.type_name == "PositionReport"]
        times = {e.timestamp for e in reports}
        assert times == set(range(0, 600, 30))

    def test_stats_every_minute(self):
        _, events = simulate()
        stats = [e for e in events if e.type_name == "SegmentStats"]
        times = sorted({e.timestamp for e in stats})
        assert times == list(range(60, 600, 60))

    def test_report_schema(self):
        _, events = simulate()
        report = next(e for e in events if e.type_name == "PositionReport")
        for attribute in ("vid", "sec", "speed", "xway", "lane", "dir", "seg", "pos"):
            assert attribute in report

    def test_deterministic_for_seed(self):
        _, first = simulate(seed=9)
        _, second = simulate(seed=9)
        assert [e.payload for e in first] == [e.payload for e in second]

    def test_different_seeds_differ(self):
        _, first = simulate(seed=1)
        _, second = simulate(seed=2)
        assert [e.payload for e in first] != [e.payload for e in second]

    def test_invalid_config_rejected(self):
        with pytest.raises(CaesarError):
            SimulationConfig(duration_seconds=0)
        with pytest.raises(CaesarError):
            SimulationConfig(churn=2.0)


class TestRegimes:
    def congested(self):
        return simulate(
            congestion_schedule=(SegmentInterval(0, 0, 0, 120, 360),),
            cars_clear=5,
            cars_congested=15,
        )

    def test_congestion_raises_car_count_and_drops_speed(self):
        _, events = self.congested()
        in_window = [
            e for e in events
            if e.type_name == "PositionReport"
            and e["seg"] == 0 and 120 <= e.timestamp < 360
        ]
        outside = [
            e for e in events
            if e.type_name == "PositionReport"
            and e["seg"] == 0 and e.timestamp < 120
        ]
        avg_in = sum(e["speed"] for e in in_window) / len(in_window)
        avg_out = sum(e["speed"] for e in outside) / len(outside)
        assert avg_in < 40 < avg_out

    def test_congestion_stats_reflect_regime(self):
        _, events = self.congested()
        stats = [
            e for e in events
            if e.type_name == "SegmentStats" and e["seg"] == 0
        ]
        congested = [s for s in stats if 180 <= s.timestamp <= 360]
        clear = [s for s in stats if s.timestamp < 120]
        assert all(s["avg_speed"] < 40 for s in congested)
        assert all(s["avg_speed"] > 40 for s in clear)

    def test_other_segment_unaffected(self):
        _, events = self.congested()
        other = [
            e for e in events
            if e.type_name == "PositionReport"
            and e["seg"] == 1 and 120 <= e.timestamp < 360
        ]
        avg = sum(e["speed"] for e in other) / len(other)
        assert avg > 40


class TestAccidents:
    def crashed(self):
        return simulate(
            accident_schedule=(SegmentInterval(0, 0, 0, 120, 300),),
        )

    def test_two_stopped_cars_at_same_position(self):
        _, events = self.crashed()
        stopped = [
            e for e in events
            if e.type_name == "PositionReport"
            and e.timestamp == 150 and e["speed"] == 0
        ]
        assert len(stopped) == 2
        assert stopped[0]["pos"] == stopped[1]["pos"]

    def test_stats_count_stopped_cars(self):
        _, events = self.crashed()
        stats = [
            e for e in events
            if e.type_name == "SegmentStats" and e["seg"] == 0
        ]
        during = [s for s in stats if 180 <= s.timestamp <= 300]
        after = [s for s in stats if s.timestamp > 330]
        assert all(s["stopped_cars"] >= 2 for s in during)
        assert all(s["stopped_cars"] == 0 for s in after)

    def test_accident_clears_after_window(self):
        _, events = self.crashed()
        late_stopped = [
            e for e in events
            if e.type_name == "PositionReport"
            and e.timestamp >= 330 and e["speed"] == 0
        ]
        assert late_stopped == []


class TestRamp:
    def test_event_rate_increases_over_run(self):
        _, events = simulate(
            duration_seconds=1200, ramp_start_fraction=0.3, cars_clear=10
        )
        reports = [e for e in events if e.type_name == "PositionReport"]
        first_quarter = sum(1 for e in reports if e.timestamp < 300)
        last_quarter = sum(1 for e in reports if e.timestamp >= 900)
        assert last_quarter > first_quarter * 1.5

    def test_vids_globally_unique_per_snapshot(self):
        _, events = simulate()
        for t in (0, 300, 570):
            vids = [
                e["vid"] for e in events
                if e.type_name == "PositionReport" and e.timestamp == t
            ]
            assert len(vids) == len(set(vids))
