"""Tests for the Linear Road CAESAR model (Figures 1 and 3)."""

import pytest

from repro.core.queries import QueryAction
from repro.linearroad.generator import (
    LinearRoadConfig,
    generate_stream,
    paper_timeline_schedules,
)
from repro.linearroad.queries import (
    ACCIDENT,
    CLEAR,
    CONGESTION,
    build_traffic_model,
    replicate_workload,
    segment_partitioner,
)
from repro.runtime.engine import CaesarEngine


class TestModelStructure:
    def test_contexts(self):
        model = build_traffic_model()
        assert set(model.context_names) == {CLEAR, CONGESTION, ACCIDENT}
        assert model.default_context == CLEAR

    def test_transition_network_matches_figure_1(self):
        model = build_traffic_model()
        edges = {
            (e.from_context, e.to_context) for e in model.transitions()
        }
        assert (CLEAR, CONGESTION) in edges  # initiate if many slow cars
        assert (CLEAR, ACCIDENT) in edges  # initiate if stopped cars
        assert (CONGESTION, ACCIDENT) in edges  # accidents during congestion
        assert (CONGESTION, CONGESTION) in edges  # terminate if few fast cars
        assert (ACCIDENT, ACCIDENT) in edges  # terminate if cars removed

    def test_toll_chain_in_congestion(self):
        model = build_traffic_model()
        congestion_queries = {
            q.name for q in model.context(CONGESTION).processing_queries
        }
        assert {"new_traveling_car", "toll_notification"} <= congestion_queries

    def test_model_validates(self):
        build_traffic_model().validate()


class TestReplication:
    def test_replication_counts(self):
        model = replicate_workload(build_traffic_model(), 3)
        processing = [q for q in model.queries() if q.is_processing]
        # 4 base processing queries, replicated eligible ones twice more
        assert len(processing) == 4 + 2 * 4

    def test_deriving_queries_never_replicated(self):
        model = replicate_workload(build_traffic_model(), 5)
        deriving = [q for q in model.queries() if q.is_deriving]
        assert len(deriving) == 4

    def test_context_filter(self):
        model = replicate_workload(
            build_traffic_model(), 3, contexts=(CONGESTION,)
        )
        replicated = [q for q in model.queries() if "#" in q.name]
        assert all(CONGESTION in q.contexts for q in replicated)

    def test_copies_have_distinct_derive_chains(self):
        """Copies must not cross-feed: each derives its own event types."""
        model = replicate_workload(
            build_traffic_model(), 2, contexts=(CONGESTION,)
        )
        derive_types = [
            q.derive_type.name
            for q in model.queries()
            if q.is_processing and CONGESTION in q.contexts
        ]
        assert len(derive_types) == len(set(derive_types))

    def test_invalid_copies(self):
        with pytest.raises(ValueError, match=">= 1"):
            replicate_workload(build_traffic_model(), 0)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        config = paper_timeline_schedules(
            LinearRoadConfig(
                num_roads=1, segments_per_road=2, duration_minutes=12, seed=7
            )
        )
        engine = CaesarEngine(
            build_traffic_model(),
            partition_by=segment_partitioner,
            retention=120,
        )
        return engine.run(generate_stream(config))

    def test_all_three_contexts_derived(self, report):
        windows = report.windows_by_partition[(0, 0, 0)]
        names = {w.context_name for w in windows}
        assert names == {CLEAR, CONGESTION, ACCIDENT}

    def test_context_timeline_matches_schedule(self, report):
        """Scaled timeline: accident ≈ [120, 240), congestion ≈ [280, end)."""
        windows = report.windows_by_partition[(0, 0, 0)]
        accident = next(w for w in windows if w.context_name == ACCIDENT)
        congestion = next(w for w in windows if w.context_name == CONGESTION)
        # detection happens at the per-minute statistics granularity
        assert 120 <= accident.start <= 240
        assert accident.end is not None and accident.end <= 330
        assert 280 <= congestion.start <= 420
        assert congestion.is_open  # congestion holds until the end

    def test_tolls_only_during_congestion(self, report):
        windows = report.windows_by_partition[(0, 0, 0)]
        congestion = next(w for w in windows if w.context_name == CONGESTION)
        tolls = [
            e for e in report.outputs
            if e.type_name == "TollNotification"
        ]
        assert tolls
        assert all(e.timestamp >= congestion.start for e in tolls)

    def test_warnings_only_during_accident(self, report):
        windows = {
            key: ws for key, ws in report.windows_by_partition.items()
        }
        warnings = [
            e for e in report.outputs if e.type_name == "AccidentWarning"
        ]
        assert warnings
        for warning in warnings:
            seg_windows = windows[(0, 0, warning["seg"])]
            accident_windows = [
                w for w in seg_windows if w.context_name == ACCIDENT
            ]
            assert any(w.holds_at(warning.timestamp) for w in accident_windows)

    def test_segment_partitioner(self, report):
        assert set(report.windows_by_partition) == {(0, 0, 0), (0, 0, 1)}
