"""Tests for the synthetic PAM substrate and its CAESAR model."""

import pytest

from repro.pam.generator import PamConfig, generate_pam_stream
from repro.pam.queries import (
    MODERATE,
    REST,
    VIGOROUS,
    build_pam_model,
    replicate_pam_workload,
    subject_partitioner,
)
from repro.pam.schema import ACTIVITIES
from repro.runtime.engine import CaesarEngine
from repro.runtime.baseline import ContextIndependentEngine


class TestGenerator:
    def test_stream_shape(self):
        config = PamConfig(num_subjects=3, duration_minutes=5, seed=1)
        stream = generate_pam_stream(config)
        assert len(stream) == 3 * (5 * 60 // config.report_interval)
        times = [e.timestamp for e in stream]
        assert times == sorted(times)

    def test_all_subjects_report(self):
        stream = generate_pam_stream(PamConfig(num_subjects=4, seed=2))
        subjects = {e["subject"] for e in stream}
        assert subjects == {1, 2, 3, 4}

    def test_deterministic(self):
        a = generate_pam_stream(PamConfig(seed=7))
        b = generate_pam_stream(PamConfig(seed=7))
        assert [e.payload for e in a] == [e.payload for e in b]

    def test_heart_rate_in_plausible_band(self):
        stream = generate_pam_stream(PamConfig(duration_minutes=10, seed=3))
        rates = [e["heart_rate"] for e in stream]
        assert all(40 < r < 220 for r in rates)

    def test_activity_statistics_table(self):
        for name, (hr, hand, chest, ankle) in ACTIVITIES.items():
            assert 50 <= hr <= 180, name
            assert hand >= 9 and chest >= 9 and ankle >= 9


class TestModel:
    def test_contexts(self):
        model = build_pam_model()
        assert set(model.context_names) == {REST, MODERATE, VIGOROUS}
        model.validate()

    def test_replication(self):
        model = replicate_pam_workload(build_pam_model(), 3)
        replicated = [q for q in model.queries() if "#" in q.name]
        assert replicated  # suspendable queries got copies
        assert all(
            set(q.contexts) & {MODERATE, VIGOROUS} for q in replicated
        )


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def reports(self):
        config = PamConfig(num_subjects=3, duration_minutes=12, seed=5)
        model = build_pam_model()
        caesar = CaesarEngine(
            model, partition_by=subject_partitioner, retention=60
        )
        baseline = ContextIndependentEngine(
            model, partition_by=subject_partitioner, retention=60
        )
        return (
            caesar.run(generate_pam_stream(config)),
            baseline.run(generate_pam_stream(config)),
        )

    def test_intensity_contexts_derived(self, reports):
        ca_report, _ = reports
        all_names = {
            w.context_name
            for windows in ca_report.windows_by_partition.values()
            for w in windows
        }
        assert MODERATE in all_names or VIGOROUS in all_names

    def test_summaries_only_while_active(self, reports):
        ca_report, _ = reports
        summaries = [
            e for e in ca_report.outputs if e.type_name == "IntensitySummary"
        ]
        assert summaries
        for summary in summaries:
            windows = ca_report.windows_by_partition[summary["subject"]]
            active = [
                w for w in windows
                if w.context_name in (MODERATE, VIGOROUS)
                and w.holds_at(summary.timestamp)
            ]
            assert active, f"summary at {summary.timestamp} outside context"

    def test_outputs_equal_to_baseline(self, reports):
        ca_report, ci_report = reports
        key = lambda report: sorted(
            (e.type_name, e.timestamp, str(sorted(e.payload.items())))
            for e in report.outputs
        )
        assert key(ca_report) == key(ci_report)

    def test_caesar_spends_less(self, reports):
        ca_report, ci_report = reports
        assert ca_report.cost_units < ci_report.cost_units
