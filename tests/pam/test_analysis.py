"""Tests for the PAM analysis helpers."""

import pytest

from repro.pam.analysis import intensity_minutes, summarize_subjects
from repro.pam.generator import PamConfig, generate_pam_stream
from repro.pam.queries import build_pam_model, subject_partitioner
from repro.runtime.engine import CaesarEngine


@pytest.fixture(scope="module")
def run():
    config = PamConfig(num_subjects=3, duration_minutes=12, seed=5)
    stream = generate_pam_stream(config)
    engine = CaesarEngine(
        build_pam_model(), partition_by=subject_partitioner, retention=60
    )
    report = engine.run(stream)
    return config, stream, report


class TestSubjectSummaries:
    def test_one_summary_per_subject(self, run):
        _, _, report = run
        summaries = summarize_subjects(report)
        assert set(summaries) == {1, 2, 3}

    def test_context_seconds_cover_the_run(self, run):
        config, _, report = run
        summaries = summarize_subjects(report, horizon=config.duration_seconds)
        for summary in summaries.values():
            total = sum(summary.seconds_by_context.values())
            # windows partition the run per subject (within the last report)
            assert total >= config.duration_seconds - config.report_interval

    def test_outputs_attributed_by_subject(self, run):
        _, _, report = run
        summaries = summarize_subjects(report)
        attributed = sum(
            count
            for summary in summaries.values()
            for count in summary.outputs_by_type.values()
        )
        assert attributed == len(report.outputs)

    def test_active_fraction_bounds(self, run):
        _, _, report = run
        for summary in summarize_subjects(report).values():
            assert 0.0 <= summary.active_fraction() <= 1.0

    def test_dominant_context(self, run):
        _, _, report = run
        for summary in summarize_subjects(report).values():
            assert summary.dominant_context in ("rest", "moderate", "vigorous")

    def test_transition_count(self, run):
        _, _, report = run
        summaries = summarize_subjects(report)
        for subject, summary in summaries.items():
            windows = report.windows_by_partition[subject]
            assert summary.transitions == max(0, len(windows) - 1)


class TestIntensityMinutes:
    def test_buckets_cover_all_reports(self, run):
        config, stream, _ = run
        buckets = intensity_minutes(stream)
        counted = sum(sum(bands.values()) for bands in buckets.values())
        assert counted == len(stream)

    def test_band_assignment(self, run):
        _, stream, _ = run
        buckets = intensity_minutes(stream, rest_max_hr=1000)
        # with an absurd rest threshold everything is rest
        assert all(
            bands["moderate"] == 0 and bands["vigorous"] == 0
            for bands in buckets.values()
        )

    def test_contexts_track_the_ground_truth(self, run):
        """Whenever a subject sustains a vigorous heart rate, that
        subject's derived vigorous context covers the moment."""
        config, stream, report = run
        checked = 0
        for event in stream:
            if event["heart_rate"] < 140:  # clearly vigorous, with margin
                continue
            subject = event["subject"]
            t = event.timestamp
            windows = report.windows_by_partition[subject]
            covered = any(
                w.context_name == "vigorous"
                and w.start <= t
                and (w.end is None or t <= w.end)
                for w in windows
            )
            assert covered, f"subject {subject} at t={t} not in vigorous"
            checked += 1
        assert checked > 0, "seeded run produced no vigorous readings"
