"""Shared fixtures for the CAESAR test suite."""

from __future__ import annotations

import pytest

from repro.algebra.operators import ExecutionContext
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType


@pytest.fixture
def position_report_type() -> EventType:
    return EventType.define(
        "PositionReport",
        vid="int",
        sec="int",
        speed="int",
        seg="int",
        lane="str",
    )


@pytest.fixture
def reading_type() -> EventType:
    return EventType.define("Reading", value="int", sec="int")


@pytest.fixture
def store() -> ContextWindowStore:
    """A window store with two user contexts and a default."""
    return ContextWindowStore(["congestion", "accident"], "clear")


@pytest.fixture
def ctx(store: ContextWindowStore) -> ExecutionContext:
    return ExecutionContext(windows=store, now=0)


def make_report(event_type: EventType, t: int, vid: int = 1, **overrides) -> Event:
    """One position report with sensible defaults."""
    payload = {
        "vid": vid,
        "sec": t,
        "speed": 55,
        "seg": 0,
        "lane": "middle",
    }
    payload.update(overrides)
    return Event(event_type, t, payload)


def make_readings(reading_type: EventType, values, *, step: int = 10) -> EventStream:
    """A stream of Reading events, one per ``step`` time units."""
    return EventStream(
        Event(reading_type, i * step, {"value": value, "sec": i * step})
        for i, value in enumerate(values)
    )


@pytest.fixture
def report_factory(position_report_type):
    def factory(t: int, vid: int = 1, **overrides) -> Event:
        return make_report(position_report_type, t, vid, **overrides)

    return factory


@pytest.fixture
def readings_factory(reading_type):
    def factory(values, *, step: int = 10) -> EventStream:
        return make_readings(reading_type, values, step=step)

    return factory
