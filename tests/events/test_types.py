"""Tests for event types and schemas."""

import pytest

from repro.errors import SchemaError
from repro.events.types import (
    AttributeSpec,
    EventSchema,
    EventType,
    build_type_registry,
)


class TestAttributeSpec:
    def test_valid_spec(self):
        spec = AttributeSpec("vid", "int")
        assert spec.accepts(42)

    def test_int_domain_rejects_bool(self):
        assert not AttributeSpec("flag", "int").accepts(True)

    def test_float_domain_accepts_int(self):
        assert AttributeSpec("speed", "float").accepts(55)

    def test_str_domain(self):
        spec = AttributeSpec("lane", "str")
        assert spec.accepts("exit")
        assert not spec.accepts(4)

    def test_object_domain_accepts_anything(self):
        spec = AttributeSpec("blob")
        assert spec.accepts([1, 2])
        assert spec.accepts(None) or True  # None is an object too

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError, match="invalid attribute name"):
            AttributeSpec("not a name", "int")

    def test_unknown_domain_rejected(self):
        with pytest.raises(SchemaError, match="unknown domain"):
            AttributeSpec("x", "decimal")


class TestEventSchema:
    def test_from_mapping_preserves_order(self):
        schema = EventSchema.from_mapping({"a": "int", "b": "str"})
        assert schema.attribute_names == ("a", "b")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            EventSchema((AttributeSpec("a", "int"), AttributeSpec("a", "str")))

    def test_contains(self):
        schema = EventSchema.from_mapping({"vid": "int"})
        assert "vid" in schema
        assert "speed" not in schema

    def test_validate_accepts_conforming_payload(self):
        schema = EventSchema.from_mapping({"vid": "int", "lane": "str"})
        schema.validate({"vid": 3, "lane": "exit"})  # should not raise

    def test_validate_missing_attribute(self):
        schema = EventSchema.from_mapping({"vid": "int"})
        with pytest.raises(SchemaError, match="missing"):
            schema.validate({})

    def test_validate_extra_attribute(self):
        schema = EventSchema.from_mapping({"vid": "int"})
        with pytest.raises(SchemaError, match="unexpected"):
            schema.validate({"vid": 1, "oops": 2})

    def test_validate_wrong_domain(self):
        schema = EventSchema.from_mapping({"vid": "int"})
        with pytest.raises(SchemaError, match="domain"):
            schema.validate({"vid": "three"})


class TestSchemaErrorShape:
    """Diagnosable violations: the message carries the event type name, the
    offending field, and the expected vs actual value type; the same facts
    are exposed as structured attributes."""

    SCHEMA = EventSchema.from_mapping({"vid": "int", "lane": "str"})

    def test_domain_violation_message_and_fields(self):
        with pytest.raises(SchemaError) as excinfo:
            self.SCHEMA.validate(
                {"vid": "three", "lane": "exit"}, type_name="Report"
            )
        error = excinfo.value
        message = str(error)
        assert "'Report'" in message
        assert "'vid'" in message
        assert "'int'" in message  # expected domain
        assert "str" in message  # actual value type
        assert error.event_type == "Report"
        assert error.field == "vid"
        assert error.expected == "int"
        assert error.actual == "str"

    def test_missing_attribute_fields(self):
        with pytest.raises(SchemaError) as excinfo:
            self.SCHEMA.validate({"lane": "exit"}, type_name="Report")
        error = excinfo.value
        assert "'Report'" in str(error)
        assert error.field == "vid"
        assert error.expected == "int"
        assert error.actual == "<absent>"

    def test_extra_attribute_fields(self):
        with pytest.raises(SchemaError) as excinfo:
            self.SCHEMA.validate(
                {"vid": 1, "lane": "exit", "oops": 2.5}, type_name="Report"
            )
        error = excinfo.value
        assert error.field == "oops"
        assert error.expected == "<not in schema>"
        assert error.actual == "float"

    def test_message_without_type_name_has_no_prefix(self):
        with pytest.raises(SchemaError) as excinfo:
            self.SCHEMA.validate({"vid": "three", "lane": "x"})
        assert "event type" not in str(excinfo.value)
        assert excinfo.value.event_type is None


class TestEventType:
    def test_define_helper(self):
        et = EventType.define("Report", vid="int", lane="str")
        assert et.name == "Report"
        assert et.schema.attribute_names == ("vid", "lane")

    def test_equality_by_name(self):
        a = EventType.define("Report", vid="int")
        b = EventType.define("Report", speed="int")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert EventType("A") != EventType("B")

    def test_invalid_name(self):
        with pytest.raises(SchemaError, match="invalid event type name"):
            EventType("3Bad")

    def test_str(self):
        assert str(EventType("Report")) == "Report"


class TestTypeRegistry:
    def test_registry(self):
        registry = build_type_registry([EventType("A"), EventType("B")])
        assert set(registry) == {"A", "B"}

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate event type"):
            build_type_registry([EventType("A"), EventType("A")])
