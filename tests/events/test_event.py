"""Tests for simple and complex events."""

import pytest

from repro.errors import SchemaError
from repro.events.event import Event, derive_complex_event
from repro.events.timebase import TimeInterval
from repro.events.types import EventType

REPORT = EventType.define("Report", vid="int", speed="int")
ALERT = EventType.define("Alert", vid="int")


class TestEventBasics:
    def test_point_timestamp_becomes_interval(self):
        event = Event(REPORT, 30, {"vid": 1, "speed": 50})
        assert event.time == TimeInterval(30, 30)
        assert event.timestamp == 30
        assert event.start_time == 30

    def test_attribute_access(self):
        event = Event(REPORT, 0, {"vid": 7, "speed": 60})
        assert event["vid"] == 7
        assert event.get("speed") == 60
        assert event.get("missing", -1) == -1
        assert "vid" in event
        assert "missing" not in event

    def test_missing_attribute_raises(self):
        event = Event(REPORT, 0, {"vid": 7, "speed": 60})
        with pytest.raises(SchemaError, match="no attribute"):
            event["lane"]

    def test_immutability(self):
        event = Event(REPORT, 0, {"vid": 1, "speed": 10})
        with pytest.raises(AttributeError):
            event.time = TimeInterval.point(5)

    def test_payload_is_a_copy(self):
        event = Event(REPORT, 0, {"vid": 1, "speed": 10})
        payload = event.payload
        payload["vid"] = 999
        assert event["vid"] == 1

    def test_validation_on_request(self):
        with pytest.raises(SchemaError):
            Event(REPORT, 0, {"vid": 1}, validate=True)
        Event(REPORT, 0, {"vid": 1, "speed": 2}, validate=True)

    def test_type_name(self):
        assert Event(REPORT, 0, {}).type_name == "Report"

    def test_event_ids_unique_and_increasing(self):
        first = Event(REPORT, 0, {})
        second = Event(REPORT, 0, {})
        assert second.event_id > first.event_id


class TestEventEquality:
    def test_value_equality(self):
        a = Event(REPORT, 5, {"vid": 1, "speed": 2})
        b = Event(REPORT, 5, {"vid": 1, "speed": 2})
        assert a == b
        assert hash(a) == hash(b)

    def test_different_payload(self):
        a = Event(REPORT, 5, {"vid": 1, "speed": 2})
        b = Event(REPORT, 5, {"vid": 1, "speed": 3})
        assert a != b

    def test_different_time(self):
        assert Event(REPORT, 5, {"vid": 1}) != Event(REPORT, 6, {"vid": 1})


class TestRestrict:
    def test_restrict_projects_and_retags(self):
        event = Event(REPORT, 3, {"vid": 9, "speed": 40})
        restricted = event.restrict(["vid"], ALERT)
        assert restricted.type_name == "Alert"
        assert restricted.payload == {"vid": 9}
        assert restricted.time == event.time


class TestComplexEvents:
    def test_derive_spans_contributors(self):
        e1 = Event(REPORT, 10, {"vid": 1, "speed": 0})
        e2 = Event(REPORT, 40, {"vid": 2, "speed": 0})
        complex_event = derive_complex_event(ALERT, [e1, e2], {"vid": 1})
        assert complex_event.time == TimeInterval(10, 40)
        assert complex_event.is_complex
        assert complex_event.derived_from == (e1, e2)
        # timestamp of a complex event is the end of its interval
        assert complex_event.timestamp == 40

    def test_derive_requires_contributors(self):
        with pytest.raises(ValueError, match="at least one"):
            derive_complex_event(ALERT, [], {})

    def test_simple_event_is_not_complex(self):
        assert not Event(REPORT, 0, {}).is_complex
