"""Tests for event streams and batches."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StreamOrderError
from repro.events.event import Event
from repro.events.stream import EventStream, StreamBatch, merge_streams
from repro.events.types import EventType

TICK = EventType.define("Tick", n="int")


def tick(t, n=0):
    return Event(TICK, t, {"n": n})


class TestEventStream:
    def test_append_in_order(self):
        stream = EventStream()
        stream.append(tick(1))
        stream.append(tick(2))
        assert len(stream) == 2
        assert stream.last_timestamp == 2

    def test_equal_timestamps_allowed(self):
        stream = EventStream([tick(5), tick(5)])
        assert len(stream) == 2

    def test_out_of_order_rejected(self):
        stream = EventStream([tick(5)])
        with pytest.raises(StreamOrderError, match="arrived"):
            stream.append(tick(4))

    def test_indexing_and_iteration(self):
        events = [tick(0), tick(1), tick(2)]
        stream = EventStream(events)
        assert stream[1] is events[1]
        assert list(stream) == events

    def test_events_between(self):
        stream = EventStream([tick(0), tick(5), tick(10), tick(15)])
        selected = stream.events_between(5, 10)
        assert [e.timestamp for e in selected] == [5, 10]

    def test_filter(self):
        stream = EventStream([tick(0, 1), tick(1, 2), tick(2, 3)])
        filtered = stream.filter(lambda e: e["n"] > 1)
        assert [e["n"] for e in filtered] == [2, 3]


class TestBatches:
    def test_batches_group_by_timestamp(self):
        stream = EventStream([tick(0), tick(0), tick(1), tick(2), tick(2)])
        batches = list(stream.batches())
        assert [b.timestamp for b in batches] == [0, 1, 2]
        assert [len(b) for b in batches] == [2, 1, 2]

    def test_empty_stream_yields_no_batches(self):
        assert list(EventStream().batches()) == []

    def test_batch_rejects_mixed_timestamps(self):
        with pytest.raises(StreamOrderError, match="share one timestamp"):
            StreamBatch([tick(1), tick(2)])

    def test_batch_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            StreamBatch([])

    def test_batch_sequence_protocol(self):
        batch = StreamBatch([tick(3, 1), tick(3, 2)])
        assert len(batch) == 2
        assert batch[0]["n"] == 1
        assert [e["n"] for e in batch] == [1, 2]


class TestMerge:
    def test_merge_preserves_global_order(self):
        a = EventStream([tick(0), tick(4), tick(8)])
        b = EventStream([tick(1), tick(4), tick(9)])
        merged = merge_streams(a, b)
        times = [e.timestamp for e in merged]
        assert times == sorted(times)
        assert len(merged) == 6

    def test_merge_empty_streams(self):
        assert len(merge_streams(EventStream(), EventStream())) == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=100), max_size=30),
        st.lists(st.integers(min_value=0, max_value=100), max_size=30),
    )
    def test_merge_property(self, times_a, times_b):
        a = EventStream(tick(t) for t in sorted(times_a))
        b = EventStream(tick(t) for t in sorted(times_b))
        merged = merge_streams(a, b)
        assert len(merged) == len(times_a) + len(times_b)
        times = [e.timestamp for e in merged]
        assert times == sorted(times_a + times_b)


class TestStreamProperties:
    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=40))
    def test_batches_partition_the_stream(self, times):
        stream = EventStream(tick(t) for t in sorted(times))
        batches = list(stream.batches())
        # batches cover every event exactly once, in order
        flattened = [e for batch in batches for e in batch]
        assert flattened == list(stream)
        # batch timestamps strictly increase
        stamps = [b.timestamp for b in batches]
        assert stamps == sorted(set(stamps))
