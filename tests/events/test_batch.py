"""Columnar batch codec: round-trip fidelity and directory discipline.

The wire codec feeds the process backend's shared-memory transport, so the
contract is strict: decode(encode(batch)) must reproduce the original
events *by value and by payload type* (an ``int`` column value must not
come back as a ``float`` that merely compares equal), for every payload
shape — including the irregular ones that ride the pickled object lane.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.pattern import MatchEvent
from repro.events import (
    ColumnarEvents,
    Event,
    EventBatch,
    EventSchema,
    EventType,
    TimeInterval,
    TypeDirectory,
)
from repro.events.batch import build_view
from repro.events.event import derive_complex_event

READING = EventType.define("Reading", value="int")
PRESSURE = EventType.define("Pressure", value="float", zone="int")
FREEFORM = EventType("Freeform", EventSchema())


def roundtrip(events, encode_directory=None, decode_directory=None):
    batch = EventBatch.encode(events, encode_directory)
    batch.commit()
    return batch, EventBatch.decode(batch.data, decode_directory)


def assert_faithful(original, decoded):
    assert list(decoded) == list(original)
    for before, after in zip(original, decoded):
        assert after.event_type == before.event_type
        assert after.time == before.time
        assert after.derived_from == () or isinstance(after, Event)
        for key, value in before._payload.items():
            assert type(after._payload[key]) is type(value), (
                key,
                value,
                after._payload[key],
            )


# ---------------------------------------------------------------------------
# directed round-trips
# ---------------------------------------------------------------------------


class TestRoundTrip:
    def test_homogeneous_int_batch(self):
        events = [Event(READING, t, {"value": t * 3}) for t in range(50)]
        batch, decoded = roundtrip(events)
        assert_faithful(events, decoded)
        assert batch.stats.columnar == 50
        assert batch.stats.object_lane == 0
        assert batch.stats.object_columns == 0

    def test_mixed_types_and_float_columns(self):
        events = [Event(READING, t, {"value": t}) for t in range(5)]
        events += [
            Event(PRESSURE, t, {"value": t / 2, "zone": t}) for t in range(5)
        ]
        _, decoded = roundtrip(events)
        assert_faithful(events, decoded)

    def test_negative_timestamps(self):
        events = [Event(READING, t, {"value": t}) for t in (-10, -3, 0, 7)]
        _, decoded = roundtrip(events)
        assert_faithful(events, decoded)
        assert decoded[0].timestamp == -10

    def test_empty_batch(self):
        batch, decoded = roundtrip([])
        assert list(decoded) == []
        assert batch.stats.events == 0

    def test_plus_named_type_survives_the_wire(self):
        # Type names are validated as identifiers at construction; a name
        # like "+" can only exist through the constructor bypass.  The
        # codec must still ship it faithfully (via the header pickle).
        weird = object.__new__(EventType)
        object.__setattr__(weird, "name", "+")
        object.__setattr__(weird, "schema", EventSchema())
        events = [Event(weird, t, {"value": t}) for t in range(3)]
        _, decoded = roundtrip(events)
        assert_faithful(events, decoded)
        assert decoded[0].type_name == "+"

    def test_bool_values_take_the_object_column(self):
        # bool is an int subclass; a typed int64 column would decode it as
        # int and break payload-type fidelity.
        events = [Event(READING, t, {"value": t % 2 == 0}) for t in range(4)]
        batch, decoded = roundtrip(events)
        assert_faithful(events, decoded)
        assert batch.stats.object_columns == 1
        assert type(decoded[0]["value"]) is bool

    def test_beyond_int64_values_take_the_object_column(self):
        events = [Event(READING, 1, {"value": 2**70}), Event(READING, 2, {"value": -(2**70)})]
        batch, decoded = roundtrip(events)
        assert_faithful(events, decoded)
        assert batch.stats.object_columns == 1

    def test_string_and_none_payloads(self):
        events = [
            Event(FREEFORM, 1, {"tag": "a", "note": None}),
            Event(FREEFORM, 2, {"tag": "b", "note": "x"}),
        ]
        batch, decoded = roundtrip(events)
        assert_faithful(events, decoded)

    def test_interval_timed_event_rides_the_object_lane(self):
        spanning = Event(READING, TimeInterval(3, 9), {"value": 1})
        events = [Event(READING, 1, {"value": 0}), spanning]
        batch, decoded = roundtrip(events)
        assert_faithful(events, decoded)
        assert batch.stats.object_lane == 1
        assert decoded[1].time == TimeInterval(3, 9)

    def test_derived_event_rides_the_object_lane(self):
        base = Event(READING, 4, {"value": 2})
        complex_event = derive_complex_event(PRESSURE, [base], {"value": 1.0, "zone": 9})
        events = [base, complex_event]
        batch, decoded = roundtrip(events)
        assert batch.stats.object_lane == 1
        assert list(decoded) == events
        assert decoded[1].derived_from == (base,)

    def test_match_event_rides_the_object_lane(self):
        base = Event(READING, 4, {"value": 2})
        match = MatchEvent({"r": base}, base.time)
        batch, decoded = roundtrip([match])
        assert batch.stats.object_lane == 1
        assert isinstance(decoded[0], MatchEvent)
        assert decoded[0].binding["r"] == base

    def test_heterogeneous_keys_within_a_type(self):
        # Same type, different payload key sets: the first shape defines
        # the segment, the others go irregular — and still round-trip.
        events = [
            Event(FREEFORM, 1, {"a": 1}),
            Event(FREEFORM, 2, {"a": 2, "b": 3}),
            Event(FREEFORM, 3, {"b": 4}),
            Event(FREEFORM, 4, {"a": 5}),
        ]
        batch, decoded = roundtrip(events)
        assert_faithful(events, decoded)
        assert batch.stats.columnar == 2
        assert batch.stats.object_lane == 2

    def test_order_is_preserved_across_lanes(self):
        events = []
        for t in range(20):
            if t % 3 == 0:
                events.append(Event(FREEFORM, TimeInterval(t, t + 1), {"k": t}))
            else:
                events.append(Event(READING, t, {"value": t}))
        _, decoded = roundtrip(events)
        assert [e.type_name for e in decoded] == [e.type_name for e in events]
        assert_faithful(events, decoded)


# ---------------------------------------------------------------------------
# property-based round-trip
# ---------------------------------------------------------------------------

_VALUES = st.one_of(
    st.integers(min_value=-(2**80), max_value=2**80),
    st.floats(allow_nan=False),
    st.booleans(),
    st.text(max_size=8),
    st.none(),
)

_TYPES = (READING, PRESSURE, FREEFORM)


@st.composite
def event_batches(draw):
    count = draw(st.integers(min_value=0, max_value=25))
    events = []
    for _ in range(count):
        event_type = draw(st.sampled_from(_TYPES))
        keys = draw(
            st.lists(
                st.sampled_from(["value", "zone", "tag", "note"]),
                unique=True,
                max_size=3,
            )
        )
        payload = {key: draw(_VALUES) for key in keys}
        time = draw(
            st.integers(min_value=-(10**6), max_value=10**6)
            | st.floats(
                allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
            )
        )
        if draw(st.booleans()):
            events.append(Event(event_type, time, payload))
        else:
            end = time + abs(draw(st.integers(min_value=0, max_value=100)))
            events.append(Event(event_type, TimeInterval(time, end), payload))
    return events


class TestRoundTripProperty:
    @given(event_batches())
    @settings(max_examples=60, deadline=None)
    def test_decode_encode_is_identity(self, events):
        _, decoded = roundtrip(events)
        assert_faithful(events, decoded)

    @given(event_batches())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_with_shared_directory(self, events):
        encoder_side = TypeDirectory()
        decoder_side = TypeDirectory()
        _, first = roundtrip(events, encoder_side, decoder_side)
        assert_faithful(events, first)
        # Second batch over the same link: already-registered types must
        # not be re-shipped, and decode must resolve them by id.
        batch, second = roundtrip(events, encoder_side, decoder_side)
        assert_faithful(events, second)
        regular_types = {
            segment.event_type for segment in build_view(events).regular
        }
        assert not [
            t for _id, t in batch.new_types if t in regular_types
        ]


# ---------------------------------------------------------------------------
# type directory discipline
# ---------------------------------------------------------------------------


class TestTypeDirectory:
    def test_commit_is_explicit(self):
        directory = TypeDirectory()
        events = [Event(READING, 1, {"value": 1})]
        batch = EventBatch.encode(events, directory)
        assert len(directory) == 0  # encode must not mutate
        batch.commit()
        assert len(directory) == 1

    def test_uncommitted_batch_does_not_drift_the_link(self):
        # A batch that falls back to pipe pickling is never committed; the
        # next committed batch must re-ship the type so decode still works.
        encoder_side = TypeDirectory()
        decoder_side = TypeDirectory()
        events = [Event(READING, 1, {"value": 1})]
        EventBatch.encode(events, encoder_side)  # shipped as pickle: no commit
        batch = EventBatch.encode(events, encoder_side)
        batch.commit()
        decoded = EventBatch.decode(batch.data, decoder_side)
        assert list(decoded) == events
        assert len(decoder_side) == len(encoder_side) == 1

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError, match="magic"):
            EventBatch.decode(b"\x00" * 32)


# ---------------------------------------------------------------------------
# ColumnarEvents container
# ---------------------------------------------------------------------------


class TestColumnarEvents:
    def test_type_names_cached(self):
        events = ColumnarEvents(
            [Event(READING, 1, {"value": 1}), Event(PRESSURE, 1, {"value": 1.0, "zone": 2})]
        )
        assert events.type_names == {"Reading", "Pressure"}
        assert events.type_names is events.type_names

    def test_is_a_list(self):
        events = ColumnarEvents([Event(READING, 1, {"value": 1})])
        assert isinstance(events, list)
        assert len(events) == 1

    def test_pickle_roundtrip(self):
        events = ColumnarEvents([Event(READING, 1, {"value": 1})])
        events.view()  # populate the cache; it must not leak into the pickle
        clone = pickle.loads(pickle.dumps(events))
        assert type(clone) is ColumnarEvents
        assert list(clone) == list(events)

    def test_columnar_toggle_changes_nothing_observable(self, monkeypatch):
        # The differential check the ISSUE asks for: the same scenario run
        # with the columnar fast path forced on vs off canonicalizes
        # identically (the engine reads CAESAR_COLUMNAR at construction,
        # and difftest's execute() builds a fresh engine per run).
        from repro.difftest import RunSpec, execute, get_scenario
        from repro.events.batch import COLUMNAR_ENV_VAR

        scenario = get_scenario("threshold")
        events = scenario.make_events(7, 0.3)
        spec = RunSpec(label="columnar-toggle")
        monkeypatch.delenv(COLUMNAR_ENV_VAR, raising=False)
        columnar_on = execute(scenario, spec, events)
        monkeypatch.setenv(COLUMNAR_ENV_VAR, "0")
        columnar_off = execute(scenario, spec, events)
        assert columnar_on == columnar_off

    def test_view_segments_and_irregular(self):
        base = Event(READING, 4, {"value": 2})
        events = ColumnarEvents(
            [
                Event(READING, 1, {"value": 1}),
                derive_complex_event(PRESSURE, [base], {"value": 1.0, "zone": 0}),
                Event(READING, 2, {"value": 5}),
            ]
        )
        view = events.view()
        assert view.n == 3
        assert view.irregular == [1]
        (segment,) = view.regular
        assert segment.columns["value"] == [1, 5]
        assert segment.indices == [0, 2]
