"""Tests for the time domain (Section 2 preliminaries)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.events.timebase import TimeInterval, interval_contains, intervals_overlap


class TestTimeIntervalConstruction:
    def test_point_interval(self):
        interval = TimeInterval.point(5)
        assert interval.start == 5
        assert interval.end == 5
        assert interval.is_point
        assert interval.duration == 0

    def test_proper_interval(self):
        interval = TimeInterval(2, 7)
        assert not interval.is_point
        assert interval.duration == 5

    def test_negative_times_allowed(self):
        """The paper restricts T to non-negative rationals; the library
        only needs the ordering.  Epoch-offset (negative) clocks are valid
        — the reorder buffer's lateness tests rely on this."""
        interval = TimeInterval(-10, 4)
        assert interval.duration == 14
        assert TimeInterval.point(-3).is_point

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="precede"):
            TimeInterval(5, 3)

    def test_fractional_times_allowed(self):
        interval = TimeInterval(0.5, 1.75)
        assert interval.duration == 1.25


class TestContainment:
    def test_contains_endpoints(self):
        interval = TimeInterval(2, 7)
        assert interval.contains(2)
        assert interval.contains(7)

    def test_contains_interior(self):
        assert TimeInterval(2, 7).contains(5)

    def test_excludes_outside(self):
        interval = TimeInterval(2, 7)
        assert not interval.contains(1.9)
        assert not interval.contains(7.1)

    def test_contains_interval(self):
        assert TimeInterval(0, 10).contains_interval(TimeInterval(2, 7))
        assert not TimeInterval(2, 7).contains_interval(TimeInterval(0, 10))
        assert TimeInterval(2, 7).contains_interval(TimeInterval(2, 7))

    def test_module_level_alias(self):
        assert interval_contains(TimeInterval(0, 4), 3)


class TestOverlap:
    def test_overlapping(self):
        assert TimeInterval(0, 5).overlaps(TimeInterval(3, 8))

    def test_touching_counts_as_overlap(self):
        # closed intervals share the boundary point
        assert TimeInterval(0, 5).overlaps(TimeInterval(5, 8))

    def test_disjoint(self):
        assert not TimeInterval(0, 4).overlaps(TimeInterval(5, 8))
        assert not intervals_overlap(TimeInterval(6, 9), TimeInterval(0, 5))

    def test_precedes(self):
        assert TimeInterval(0, 4).precedes(TimeInterval(5, 8))
        assert not TimeInterval(0, 5).precedes(TimeInterval(5, 8))


class TestSpanAndIntersect:
    def test_span(self):
        assert TimeInterval(1, 3).span(TimeInterval(5, 9)) == TimeInterval(1, 9)

    def test_span_is_commutative(self):
        a, b = TimeInterval(1, 3), TimeInterval(2, 9)
        assert a.span(b) == b.span(a)

    def test_intersect_overlapping(self):
        assert TimeInterval(0, 5).intersect(TimeInterval(3, 8)) == TimeInterval(3, 5)

    def test_intersect_disjoint_is_none(self):
        assert TimeInterval(0, 2).intersect(TimeInterval(3, 8)) is None


bounded_times = st.integers(min_value=0, max_value=10_000)


@st.composite
def intervals(draw):
    start = draw(bounded_times)
    end = draw(st.integers(min_value=start, max_value=start + 10_000))
    return TimeInterval(start, end)


class TestIntervalProperties:
    @given(intervals(), intervals())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(intervals(), intervals())
    def test_span_covers_both(self, a, b):
        span = a.span(b)
        assert span.contains_interval(a)
        assert span.contains_interval(b)

    @given(intervals(), intervals())
    def test_intersection_inside_both(self, a, b):
        intersection = a.intersect(b)
        if intersection is None:
            assert not a.overlaps(b)
        else:
            assert a.contains_interval(intersection)
            assert b.contains_interval(intersection)

    @given(intervals(), bounded_times)
    def test_contains_consistent_with_bounds(self, interval, t):
        assert interval.contains(t) == (interval.start <= t <= interval.end)
