"""Tests for the synthetic stream builders."""

import pytest

from repro.events.generators import (
    bursty_stream,
    constant_rate_stream,
    ramping_stream,
    random_walk_payload,
)
from repro.events.types import EventType

TICK = EventType.define("Tick", value="int", sec="int")


class TestConstantRate:
    def test_count_and_spacing(self):
        stream = constant_rate_stream(
            TICK, duration=100, interval=10, events_per_tick=2
        )
        assert len(stream) == 20
        timestamps = sorted({e.timestamp for e in stream})
        assert timestamps == list(range(0, 100, 10))

    def test_deterministic(self):
        a = constant_rate_stream(TICK, duration=50, interval=5, seed=3)
        b = constant_rate_stream(TICK, duration=50, interval=5, seed=3)
        assert [e.payload for e in a] == [e.payload for e in b]

    def test_invalid_interval(self):
        with pytest.raises(ValueError, match="positive"):
            constant_rate_stream(TICK, duration=10, interval=0)


class TestRamping:
    def test_rate_increases(self):
        stream = ramping_stream(
            TICK, duration=100, interval=10, start_events=1, end_events=9
        )
        first = sum(1 for e in stream if e.timestamp == 0)
        last = sum(1 for e in stream if e.timestamp == 90)
        assert first == 1
        assert last >= 8

    def test_descending_ramp(self):
        stream = ramping_stream(
            TICK, duration=100, interval=10, start_events=9, end_events=1
        )
        first = sum(1 for e in stream if e.timestamp == 0)
        last = sum(1 for e in stream if e.timestamp == 90)
        assert first > last


class TestBursty:
    def test_bursts_have_more_events(self):
        stream = bursty_stream(
            TICK,
            duration=200,
            interval=10,
            quiet_events=1,
            burst_events=10,
            burst_every=100,
            burst_length=20,
        )
        in_burst = sum(1 for e in stream if e.timestamp == 0)
        quiet = sum(1 for e in stream if e.timestamp == 50)
        assert in_burst == 10
        assert quiet == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="positive"):
            bursty_stream(
                TICK, duration=10, interval=10, quiet_events=1,
                burst_events=2, burst_every=0, burst_length=1,
            )


class TestRandomWalk:
    def test_bounded(self):
        payload = random_walk_payload("value", start=50, step=20, low=0, high=100)
        stream = constant_rate_stream(
            TICK, duration=1000, interval=1, payload=payload, seed=7
        )
        values = [e["value"] for e in stream]
        assert all(0 <= v <= 100 for v in values)

    def test_walk_moves(self):
        payload = random_walk_payload("value", step=10)
        stream = constant_rate_stream(
            TICK, duration=100, interval=1, payload=payload, seed=7
        )
        values = {e["value"] for e in stream}
        assert len(values) > 10

    def test_steps_bounded(self):
        payload = random_walk_payload("value", step=5)
        stream = constant_rate_stream(
            TICK, duration=200, interval=1, payload=payload, seed=7
        )
        values = [e["value"] for e in stream]
        diffs = [abs(b - a) for a, b in zip(values, values[1:])]
        assert max(diffs) <= 5 + 1e-9
