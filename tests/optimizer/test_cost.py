"""Tests for the CPU cost model (Section 5.1)."""

import pytest

from repro.algebra.context_ops import (
    ContextInitiation,
    ContextTermination,
    ContextWindowOperator,
)
from repro.algebra.expressions import attr
from repro.algebra.pattern import EventMatch, PatternOperator
from repro.algebra.plan import QueryPlan
from repro.algebra.relational_ops import Filter, Projection
from repro.events.types import EventType
from repro.optimizer.cost import CostModel, estimate_plan_cost

OUT = EventType.define("Out", n="int")


class TestCostModel:
    def test_unit_costs_by_kind(self):
        model = CostModel()
        assert model.unit_cost(PatternOperator(EventMatch("A"))) == 2.0
        assert model.unit_cost(Filter(attr("n").gt(1))) == 1.0
        assert model.unit_cost(Projection(OUT, [("n", attr("n"))])) == 0.5
        # context operators are constant and cheap (Section 5.1)
        assert model.unit_cost(ContextInitiation("c")) == pytest.approx(0.1)
        assert model.unit_cost(ContextTermination("c")) == pytest.approx(0.1)
        assert model.unit_cost(ContextWindowOperator("c")) == pytest.approx(0.05)

    def test_selectivity_defaults(self):
        model = CostModel()
        assert model.selectivity(Filter(attr("n").gt(1))) == 0.5
        assert model.selectivity(Projection(OUT, [("n", attr("n"))])) == 1.0

    def test_window_selectivity_from_activity(self):
        model = CostModel(context_activity={"busy": 0.9, "rare": 0.1})
        assert model.selectivity(ContextWindowOperator("busy")) == 0.9
        assert model.selectivity(ContextWindowOperator("rare")) == 0.1
        assert model.selectivity(ContextWindowOperator("unknown")) == 0.5


class TestPlanCost:
    def test_rate_attenuation(self):
        """Downstream operators are charged at the attenuated rate."""
        plan = QueryPlan(
            [
                Filter(attr("n").gt(1)),  # sel 0.5
                Filter(attr("n").lt(9)),  # charged at rate 0.5
            ]
        )
        cost = estimate_plan_cost(plan, CostModel(), input_rate=1.0)
        assert cost == pytest.approx(1.0 * 1.0 + 0.5 * 1.0)

    def test_window_charged_per_batch_not_per_event(self):
        plan = QueryPlan([ContextWindowOperator("c")])
        cost_high_rate = estimate_plan_cost(plan, input_rate=1000.0)
        cost_low_rate = estimate_plan_cost(plan, input_rate=1.0)
        assert cost_high_rate == cost_low_rate

    def test_input_rate_scales_cost(self):
        plan = QueryPlan([Filter(attr("n").gt(1))])
        assert estimate_plan_cost(plan, input_rate=10.0) == pytest.approx(
            10 * estimate_plan_cost(plan, input_rate=1.0)
        )

    def test_rare_context_window_shields_upstream(self):
        model = CostModel(context_activity={"rare": 0.1})
        shielded = QueryPlan(
            [ContextWindowOperator("rare"), PatternOperator(EventMatch("A"))]
        )
        exposed = QueryPlan(
            [PatternOperator(EventMatch("A")), ContextWindowOperator("rare")]
        )
        assert estimate_plan_cost(shielded, model) < estimate_plan_cost(
            exposed, model
        )


class TestAggregateCosts:
    def _pattern_aggregate(self):
        from repro.algebra.aggregate import MatchAggregate
        from repro.algebra.pattern import Sequence
        from repro.algebra.seq_aggregate import (
            AggregateOutput,
            MatchAggregateProjection,
            PatternAggregateOperator,
        )

        online = PatternAggregateOperator(
            Sequence((EventMatch("A", "a"), EventMatch("B", "b"))),
            (AggregateOutput(OUT, (MatchAggregate("n", "count"),)),),
        )
        oracle = MatchAggregateProjection(
            (AggregateOutput(OUT, (MatchAggregate("n", "count"),)),)
        )
        return online, oracle

    def test_unit_costs(self):
        model = CostModel()
        online, oracle = self._pattern_aggregate()
        assert model.unit_cost(online) == model.pattern_aggregate_cost
        assert model.unit_cost(oracle) == model.match_aggregate_cost
        # the aggregate operator costs slightly more per event than the
        # plain pattern operator (summary bookkeeping) but emits far less
        assert model.unit_cost(online) > model.unit_cost(
            PatternOperator(EventMatch("A"))
        )

    def test_selectivity(self):
        model = CostModel()
        online, oracle = self._pattern_aggregate()
        assert model.selectivity(online) == model.aggregate_selectivity
        assert model.selectivity(oracle) == model.aggregate_selectivity


class TestSharingBenefit:
    def _specs(self, queries_per_window=2):
        from repro.core.windows import WindowSpec
        from repro.language import parse_query

        queries = tuple(
            parse_query(
                f"DERIVE Fused{i}(COUNT(*)) "
                "PATTERN SEQ(CbA a, CbB b) WHERE a.v > 3",
                name=f"fused{i}",
            )
            for i in range(queries_per_window)
        )
        return [
            WindowSpec("w1", start=0, end=100, queries=queries),
            WindowSpec("w2", start=0, end=100, queries=queries),
        ]

    def test_fusible_aggregates_make_sharing_win(self):
        from repro.optimizer.cost import estimate_sharing_benefit

        benefit = estimate_sharing_benefit(self._specs())
        assert benefit.shared_plans < benefit.nonshared_plans
        assert benefit.benefit > 0
        assert benefit.ratio > 1.0

    def test_benefit_grows_with_fused_query_count(self):
        from repro.optimizer.cost import estimate_sharing_benefit

        small = estimate_sharing_benefit(self._specs(2))
        large = estimate_sharing_benefit(self._specs(4))
        assert large.ratio > small.ratio

    def test_no_overlap_no_benefit(self):
        from repro.core.windows import WindowSpec
        from repro.language import parse_query
        from repro.optimizer.cost import estimate_sharing_benefit

        specs = [
            WindowSpec("w1", start=0, end=100, queries=(
                parse_query("DERIVE CbOut1(a.v) PATTERN CbA a", name="q1"),
            )),
            WindowSpec("w2", start=200, end=300, queries=(
                parse_query("DERIVE CbOut2(a.v) PATTERN CbA a", name="q2"),
            )),
        ]
        benefit = estimate_sharing_benefit(specs)
        assert benefit.ratio == pytest.approx(1.0)
        assert benefit.benefit == pytest.approx(0.0)
