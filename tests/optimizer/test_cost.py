"""Tests for the CPU cost model (Section 5.1)."""

import pytest

from repro.algebra.context_ops import (
    ContextInitiation,
    ContextTermination,
    ContextWindowOperator,
)
from repro.algebra.expressions import attr
from repro.algebra.pattern import EventMatch, PatternOperator
from repro.algebra.plan import QueryPlan
from repro.algebra.relational_ops import Filter, Projection
from repro.events.types import EventType
from repro.optimizer.cost import CostModel, estimate_plan_cost

OUT = EventType.define("Out", n="int")


class TestCostModel:
    def test_unit_costs_by_kind(self):
        model = CostModel()
        assert model.unit_cost(PatternOperator(EventMatch("A"))) == 2.0
        assert model.unit_cost(Filter(attr("n").gt(1))) == 1.0
        assert model.unit_cost(Projection(OUT, [("n", attr("n"))])) == 0.5
        # context operators are constant and cheap (Section 5.1)
        assert model.unit_cost(ContextInitiation("c")) == pytest.approx(0.1)
        assert model.unit_cost(ContextTermination("c")) == pytest.approx(0.1)
        assert model.unit_cost(ContextWindowOperator("c")) == pytest.approx(0.05)

    def test_selectivity_defaults(self):
        model = CostModel()
        assert model.selectivity(Filter(attr("n").gt(1))) == 0.5
        assert model.selectivity(Projection(OUT, [("n", attr("n"))])) == 1.0

    def test_window_selectivity_from_activity(self):
        model = CostModel(context_activity={"busy": 0.9, "rare": 0.1})
        assert model.selectivity(ContextWindowOperator("busy")) == 0.9
        assert model.selectivity(ContextWindowOperator("rare")) == 0.1
        assert model.selectivity(ContextWindowOperator("unknown")) == 0.5


class TestPlanCost:
    def test_rate_attenuation(self):
        """Downstream operators are charged at the attenuated rate."""
        plan = QueryPlan(
            [
                Filter(attr("n").gt(1)),  # sel 0.5
                Filter(attr("n").lt(9)),  # charged at rate 0.5
            ]
        )
        cost = estimate_plan_cost(plan, CostModel(), input_rate=1.0)
        assert cost == pytest.approx(1.0 * 1.0 + 0.5 * 1.0)

    def test_window_charged_per_batch_not_per_event(self):
        plan = QueryPlan([ContextWindowOperator("c")])
        cost_high_rate = estimate_plan_cost(plan, input_rate=1000.0)
        cost_low_rate = estimate_plan_cost(plan, input_rate=1.0)
        assert cost_high_rate == cost_low_rate

    def test_input_rate_scales_cost(self):
        plan = QueryPlan([Filter(attr("n").gt(1))])
        assert estimate_plan_cost(plan, input_rate=10.0) == pytest.approx(
            10 * estimate_plan_cost(plan, input_rate=1.0)
        )

    def test_rare_context_window_shields_upstream(self):
        model = CostModel(context_activity={"rare": 0.1})
        shielded = QueryPlan(
            [ContextWindowOperator("rare"), PatternOperator(EventMatch("A"))]
        )
        exposed = QueryPlan(
            [PatternOperator(EventMatch("A")), ContextWindowOperator("rare")]
        )
        assert estimate_plan_cost(shielded, model) < estimate_plan_cost(
            exposed, model
        )
