"""Tests for applying the search/rank ordering to real plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.context_ops import ContextWindowOperator
from repro.algebra.expressions import BinaryOp, Constant, attr
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import EventMatch, PatternOperator
from repro.algebra.plan import QueryPlan, clone_operator
from repro.algebra.relational_ops import Filter, Projection
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType
from repro.optimizer.apply import full_optimize, reorder_filters
from repro.optimizer.cost import CostModel

A = EventType.define("A", n="int", m="int")
OUT = EventType.define("Out", n="int")


def ctx(active=("c1",)):
    store = ContextWindowStore(["c1"], "default")
    for name in active:
        store.initiate(name, 0)
    return ExecutionContext(windows=store, now=0)


def events(count=20):
    return [Event(A, 1, {"n": i, "m": i * 3 % 17}) for i in range(count)]


class _SelectivityModel(CostModel):
    """A cost model that reads per-filter selectivity from an attribute."""

    def __init__(self, selectivities):
        super().__init__()
        self._selectivities = selectivities

    def selectivity(self, operator):
        if isinstance(operator, Filter):
            return self._selectivities.get(
                str(operator.predicate), super().selectivity(operator)
            )
        return super().selectivity(operator)


class TestReorderFilters:
    def test_selective_filter_moves_first(self):
        weak = Filter(attr("n").gt(1))
        strong = Filter(attr("n").gt(15))
        model = _SelectivityModel({
            str(weak.predicate): 0.9,
            str(strong.predicate): 0.1,
        })
        plan = QueryPlan([PatternOperator(EventMatch("A", "")), weak, strong])
        reordered = reorder_filters(plan, model)
        filters = [op for op in reordered.operators if isinstance(op, Filter)]
        assert filters[0] is strong
        assert filters[1] is weak

    def test_runs_do_not_cross_barriers(self):
        """Filters separated by a projection stay on their own side."""
        f1 = Filter(attr("n").gt(1))
        f2 = Filter(attr("n").gt(2))
        projection = Projection(OUT, [("n", attr("n"))])
        plan = QueryPlan(
            [PatternOperator(EventMatch("A", "")), f1, projection, f2]
        )
        reordered = reorder_filters(plan)
        position = [type(op).__name__ for op in reordered.operators]
        assert position == [
            "PatternOperator", "Filter", "Projection", "Filter",
        ]

    def test_unchanged_plan_returned_as_is(self):
        plan = QueryPlan([PatternOperator(EventMatch("A", ""))])
        assert reorder_filters(plan) is plan


class TestFullOptimize:
    def make_plan(self):
        return QueryPlan(
            [
                PatternOperator(EventMatch("A", "")),
                Filter(attr("n").gt(2)),
                ContextWindowOperator("c1"),
                Filter(attr("m").gt(4)),
                Projection(OUT, [("n", attr("n"))]),
            ],
            name="p",
            context_name="c1",
        )

    def test_window_lands_at_bottom(self):
        optimized = full_optimize(self.make_plan())
        assert isinstance(optimized.operators[0], ContextWindowOperator)

    def test_filters_merge_after_reorder(self):
        optimized = full_optimize(self.make_plan())
        filters = [op for op in optimized.operators if isinstance(op, Filter)]
        assert len(filters) == 1  # the adjacent run merged

    def test_equivalence(self):
        plan = self.make_plan()
        optimized = full_optimize(
            QueryPlan(
                [clone_operator(op) for op in plan.operators],
                name="p", context_name="c1",
            )
        )
        batch = events()
        out_a = plan.execute(list(batch), ctx())
        out_b = optimized.execute(list(batch), ctx())
        key = lambda out: sorted(str(sorted(e.payload.items())) for e in out)
        assert key(out_a) == key(out_b)

    @given(st.permutations([0.1, 0.5, 0.9]))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_under_any_selectivity_model(self, selectivities):
        f1 = Filter(attr("n").gt(3))
        f2 = Filter(attr("n").lt(18))
        f3 = Filter(attr("m").gt(2))
        model = _SelectivityModel({
            str(f1.predicate): selectivities[0],
            str(f2.predicate): selectivities[1],
            str(f3.predicate): selectivities[2],
        })
        operators = [PatternOperator(EventMatch("A", "")), f1, f2, f3]
        plan = QueryPlan([clone_operator(op) for op in operators])
        optimized = full_optimize(
            QueryPlan([clone_operator(op) for op in operators]), model
        )
        batch = events()
        key = lambda out: sorted(str(sorted(e.payload.items())) for e in out)
        assert key(plan.execute(list(batch), ctx())) == key(
            optimized.execute(list(batch), ctx())
        )
