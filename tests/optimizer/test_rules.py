"""Tests for the classic context-oblivious rewrites (Section 5.2)."""

from repro.algebra.expressions import attr
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import EventMatch, PatternOperator
from repro.algebra.plan import QueryPlan
from repro.algebra.relational_ops import Filter, Projection
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType
from repro.optimizer.rules import (
    apply_classic_rewrites,
    merge_adjacent_filters,
    projection_preserves,
    swap_filter_below_projection,
)

A = EventType.define("A", n="int", m="int")
OUT = EventType.define("Out", n="int", m="int")


def ctx():
    return ExecutionContext(windows=ContextWindowStore([], "d"), now=0)


def events(n):
    return [Event(A, 1, {"n": i, "m": i * 2}) for i in range(n)]


class TestFilterMerge:
    def test_adjacent_filters_merge(self):
        plan = QueryPlan(
            [
                PatternOperator(EventMatch("A", "a")),
                Filter(attr("n", "a").gt(1)),
                Filter(attr("n", "a").lt(8)),
            ]
        )
        merged = merge_adjacent_filters(plan)
        filters = [op for op in merged.operators if isinstance(op, Filter)]
        assert len(filters) == 1

    def test_merged_filter_equivalent(self):
        operators = [
            PatternOperator(EventMatch("A", "a")),
            Filter(attr("n", "a").gt(1)),
            Filter(attr("n", "a").lt(8)),
        ]
        plan = QueryPlan(list(operators))
        merged = merge_adjacent_filters(QueryPlan(list(operators)))
        batch = events(10)
        out_a = plan.clone().execute(batch, ctx())
        out_b = merged.clone().execute(batch, ctx())
        assert [e.payload for e in out_a] == [e.payload for e in out_b]

    def test_non_adjacent_filters_untouched(self):
        plan = QueryPlan(
            [
                Filter(attr("n").gt(1)),
                Projection(OUT, [("n", attr("n"))]),
                Filter(attr("n").lt(8)),
            ]
        )
        assert merge_adjacent_filters(plan) is plan

    def test_triple_merge(self):
        plan = QueryPlan(
            [
                Filter(attr("n").gt(1)),
                Filter(attr("n").lt(8)),
                Filter(attr("n").ne(5)),
            ]
        )
        merged = merge_adjacent_filters(plan)
        assert len(merged.operators) == 1


class TestProjectionFilterSwap:
    def identity_projection(self):
        return Projection(OUT, [("n", attr("n")), ("m", attr("m"))])

    def test_preserves_check(self):
        projection = self.identity_projection()
        reads_n = Filter(attr("n").gt(1))
        reads_other = Filter(attr("zz").gt(1))
        assert projection_preserves(projection, reads_n)
        assert not projection_preserves(projection, reads_other)

    def test_swap_happens_when_safe(self):
        plan = QueryPlan(
            [self.identity_projection(), Filter(attr("n").gt(1))]
        )
        swapped = swap_filter_below_projection(plan)
        assert isinstance(swapped.operators[0], Filter)
        assert isinstance(swapped.operators[1], Projection)

    def test_no_swap_when_projection_drops_attribute(self):
        plan = QueryPlan(
            [
                Projection(OUT, [("n", attr("n"))]),  # drops m
                Filter(attr("m").gt(1)),
            ]
        )
        assert swap_filter_below_projection(plan) is plan

    def test_no_swap_for_computed_projection(self):
        plan = QueryPlan(
            [
                Projection(OUT, [("n", attr("m") * 2)]),  # renames/computes
                Filter(attr("n").gt(1)),
            ]
        )
        assert swap_filter_below_projection(plan) is plan

    def test_swap_preserves_semantics(self):
        operators = [self.identity_projection(), Filter(attr("n").gt(3))]
        plan = QueryPlan(list(operators))
        swapped = swap_filter_below_projection(QueryPlan(list(operators)))
        batch = events(8)
        out_a = plan.execute(batch, ctx())
        out_b = swapped.execute(batch, ctx())
        assert sorted(e["n"] for e in out_a) == sorted(e["n"] for e in out_b)


class TestFixpoint:
    def test_rewrites_compose(self):
        plan = QueryPlan(
            [
                Projection(OUT, [("n", attr("n")), ("m", attr("m"))]),
                Filter(attr("n").gt(1)),
                Filter(attr("n").lt(9)),
            ]
        )
        rewritten = apply_classic_rewrites(plan)
        # both filters slid below the projection and merged into one
        assert isinstance(rewritten.operators[0], Filter)
        assert isinstance(rewritten.operators[1], Projection)
        assert len(rewritten.operators) == 2
