"""Tests for context window push-down (Section 5.2, Theorem 1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.context_ops import ContextWindowOperator
from repro.algebra.operators import ExecutionContext
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType
from repro.language import parse_query
from repro.optimizer.cost import CostModel, estimate_plan_cost
from repro.optimizer.planner import build_query_plan
from repro.optimizer.pushdown import is_pushed_down, push_context_windows_down

A = EventType.define("A", n="int", sec="int", lane="str")


def make_plan(context="c1"):
    query = parse_query(
        "DERIVE X(a.n) PATTERN A a WHERE a.n > 2 CONTEXT c1", name="q"
    )
    return build_query_plan(query, context)


def make_ctx(active=()):
    store = ContextWindowStore(["c1"], "default")
    for name in active:
        store.initiate(name, 0)
    return ExecutionContext(windows=store, now=0)


def events(n):
    return [Event(A, 1, {"n": i, "sec": 1, "lane": "x"}) for i in range(n)]


class TestRewrite:
    def test_moves_window_to_bottom(self):
        plan = make_plan()
        assert not is_pushed_down(plan)
        pushed = push_context_windows_down(plan)
        assert is_pushed_down(pushed)
        assert isinstance(pushed.operators[0], ContextWindowOperator)

    def test_preserves_other_operator_order(self):
        plan = make_plan()
        pushed = push_context_windows_down(plan)
        original_rest = [
            op for op in plan.operators
            if not isinstance(op, ContextWindowOperator)
        ]
        pushed_rest = [
            op for op in pushed.operators
            if not isinstance(op, ContextWindowOperator)
        ]
        assert pushed_rest == original_rest

    def test_plan_without_window_unchanged(self):
        query = parse_query("DERIVE X(a.n) PATTERN A a", name="q")
        plan = build_query_plan(query, "c1", with_context_window=False)
        assert push_context_windows_down(plan) is plan

    def test_idempotent(self):
        pushed = push_context_windows_down(make_plan())
        assert push_context_windows_down(pushed).operators == pushed.operators


class TestSemanticsPreserved:
    def test_same_output_when_active(self):
        plan, pushed = make_plan(), push_context_windows_down(make_plan())
        batch = events(10)
        out_a = plan.execute(batch, make_ctx(active=["c1"]))
        out_b = pushed.execute(batch, make_ctx(active=["c1"]))
        assert [e.payload for e in out_a] == [e.payload for e in out_b]

    def test_same_output_when_inactive(self):
        plan, pushed = make_plan(), push_context_windows_down(make_plan())
        batch = events(10)
        assert plan.execute(batch, make_ctx()) == []
        assert pushed.execute(batch, make_ctx()) == []

    def test_pushed_plan_does_less_work_when_inactive(self):
        plan, pushed = make_plan(), push_context_windows_down(make_plan())
        batch = events(10)
        plan.execute(batch, make_ctx())
        pushed.execute(batch, make_ctx())
        assert pushed.total_cost_units() < plan.total_cost_units()


class TestTheorem1:
    def test_pushed_down_cost_is_minimal(self):
        """cost(p') <= cost(p) for every placement p of the window."""
        model = CostModel(context_activity={"c1": 0.3})
        plan = make_plan()
        pushed = push_context_windows_down(plan)
        pushed_cost = estimate_plan_cost(pushed, model)
        # try the window at every other position
        others = [
            op for op in plan.operators
            if not isinstance(op, ContextWindowOperator)
        ]
        window = next(
            op for op in plan.operators
            if isinstance(op, ContextWindowOperator)
        )
        from repro.algebra.plan import QueryPlan

        for position in range(1, len(others) + 1):
            operators = others[:position] + [window] + others[position:]
            candidate = QueryPlan(operators, name="candidate")
            assert pushed_cost <= estimate_plan_cost(candidate, model)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30)
    def test_holds_for_any_activity(self, activity):
        model = CostModel(context_activity={"c1": activity})
        plan = make_plan()
        pushed = push_context_windows_down(plan)
        assert estimate_plan_cost(pushed, model) <= estimate_plan_cost(
            plan, model
        )

    def test_equal_cost_when_always_active(self):
        """Theorem 1's boundary case: an always-active context."""
        model = CostModel(context_activity={"c1": 1.0})
        plan = make_plan()
        pushed = push_context_windows_down(plan)
        assert estimate_plan_cost(pushed, model) == estimate_plan_cost(
            plan, model
        )
