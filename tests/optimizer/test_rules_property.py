"""Property tests: the classic rewrites never change plan output."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import attr
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import EventMatch, PatternOperator
from repro.algebra.plan import QueryPlan
from repro.algebra.relational_ops import Filter, Projection
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType
from repro.optimizer.rules import apply_classic_rewrites

A = EventType.define("A", n="int", m="int")
OUT = EventType.define("Out", n="int", m="int")


def ctx():
    return ExecutionContext(windows=ContextWindowStore([], "d"), now=0)


@st.composite
def random_plan_operators(draw):
    """A pipeline of a pattern followed by filters/identity projections."""
    operators = [PatternOperator(EventMatch("A", ""))]
    stage_count = draw(st.integers(min_value=1, max_value=5))
    for _ in range(stage_count):
        if draw(st.booleans()):
            attribute = draw(st.sampled_from(["n", "m"]))
            op = draw(st.sampled_from([">", "<", ">=", "<=", "!="]))
            value = draw(st.integers(min_value=0, max_value=30))
            from repro.algebra.expressions import BinaryOp

            operators.append(
                Filter(BinaryOp(op, attr(attribute), _const(value)))
            )
        else:
            operators.append(
                Projection(OUT, [("n", attr("n")), ("m", attr("m"))])
            )
    return operators


def _const(value):
    from repro.algebra.expressions import Constant

    return Constant(value)


events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
    ),
    max_size=25,
).map(
    lambda rows: [
        Event(A, t, {"n": n, "m": m})
        for t, n, m in sorted(rows, key=lambda r: r[0])
    ]
)


class TestRewriteEquivalence:
    @given(random_plan_operators(), events_strategy)
    @settings(max_examples=100, deadline=None)
    def test_rewritten_plan_equivalent(self, operators, events):
        original = QueryPlan(list(operators), name="orig")
        rewritten = apply_classic_rewrites(
            QueryPlan([_clone(op) for op in operators], name="rewritten")
        )
        out_original = original.execute(list(events), ctx())
        out_rewritten = rewritten.execute(list(events), ctx())
        key = lambda out: sorted(
            (e.type_name, e.timestamp, str(sorted(e.payload.items())))
            for e in out
        )
        assert key(out_original) == key(out_rewritten)

    @given(random_plan_operators())
    @settings(max_examples=100, deadline=None)
    def test_rewrite_is_idempotent(self, operators):
        once = apply_classic_rewrites(QueryPlan(list(operators)))
        twice = apply_classic_rewrites(once)
        assert [op.name for op in twice.operators] == [
            op.name for op in once.operators
        ]


def _clone(operator):
    from repro.algebra.plan import clone_operator

    return clone_operator(operator)
