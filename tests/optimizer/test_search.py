"""Tests for plan search: exhaustive vs greedy vs context-aware (Fig 11a)."""

import itertools

import pytest

from repro.errors import OptimizerError
from repro.optimizer.search import (
    LogicalOperator,
    context_aware_search,
    exhaustive_search,
    greedy_search,
    make_search_space,
)


def order_cost(operators, order, input_rate=1.0):
    by_index = {op.index: op for op in operators}
    rate, total = input_rate, 0.0
    for index in order:
        op = by_index[index]
        total += rate * op.unit_cost
        rate *= op.selectivity
    return total


def brute_force_best(operators):
    """Reference optimum by checking every valid permutation."""
    best = None
    for perm in itertools.permutations(op.index for op in operators):
        placed = set()
        valid = True
        for index in perm:
            op = next(o for o in operators if o.index == index)
            if not op.prerequisites <= placed:
                valid = False
                break
            placed.add(index)
        if not valid:
            continue
        cost = order_cost(operators, perm)
        if best is None or cost < best:
            best = cost
    return best


class TestSearchSpace:
    def test_generation(self):
        ops = make_search_space(10, num_groups=2)
        assert len(ops) == 10
        assert sum(1 for op in ops if op.kind == "pattern") == 2
        groups = {op.group for op in ops}
        assert groups == {"g0", "g1"}

    def test_deterministic(self):
        a = make_search_space(8, seed=3)
        b = make_search_space(8, seed=3)
        assert a == b

    def test_too_few_operators_rejected(self):
        with pytest.raises(OptimizerError, match="at least one"):
            make_search_space(2, num_groups=3)


class TestExhaustiveSearch:
    def test_finds_true_optimum(self):
        ops = make_search_space(7, seed=5)
        result = exhaustive_search(ops)
        assert result.cost == pytest.approx(brute_force_best(ops))

    def test_respects_prerequisites(self):
        ops = make_search_space(6, seed=1)
        result = exhaustive_search(ops)
        placed = set()
        by_index = {op.index: op for op in ops}
        for index in result.order:
            assert by_index[index].prerequisites <= placed
            placed.add(index)

    def test_order_is_a_permutation(self):
        ops = make_search_space(8, seed=2)
        result = exhaustive_search(ops)
        assert sorted(result.order) == [op.index for op in ops]

    def test_impossible_prerequisites_rejected(self):
        ops = [
            LogicalOperator(0, "filter", 1.0, 0.5, frozenset({1})),
            LogicalOperator(1, "filter", 1.0, 0.5, frozenset({0})),
        ]
        with pytest.raises(OptimizerError, match="no valid"):
            exhaustive_search(ops)

    def test_nodes_grow_exponentially(self):
        small = exhaustive_search(make_search_space(8)).nodes_explored
        large = exhaustive_search(make_search_space(14)).nodes_explored
        # 2^n scaling: 6 more operators means ≥ 2^5 more nodes
        assert large > small * 32


class TestGreedySearch:
    def test_valid_order(self):
        ops = make_search_space(12, seed=4)
        result = greedy_search(ops)
        assert sorted(result.order) == [op.index for op in ops]

    def test_cost_close_to_optimal_on_small_inputs(self):
        ops = make_search_space(7, seed=9)
        optimal = exhaustive_search(ops).cost
        greedy = greedy_search(ops).cost
        assert greedy >= optimal  # greedy can never beat the optimum
        assert greedy <= optimal * 2.0  # and is reasonable on this family

    def test_quadratic_node_count(self):
        result = greedy_search(make_search_space(20))
        assert result.nodes_explored <= 20 * 20


class TestContextAwareSearch:
    def test_explores_far_fewer_nodes(self):
        """The Figure 11(a) effect: grouping collapses the search space."""
        ops = make_search_space(16, num_groups=4)
        exhaustive = exhaustive_search(ops)
        context_aware = context_aware_search(ops)
        assert context_aware.nodes_explored < exhaustive.nodes_explored / 10

    def test_exact_within_groups_still_cheap(self):
        ops = make_search_space(16, num_groups=4)
        result = context_aware_search(ops, within_group="exhaustive")
        # four independent 4-operator groups: 4 * (2^4 * 4) upper bound
        assert result.nodes_explored <= 4 * (2 ** 4) * 4

    def test_single_group_greedy_equals_plain_greedy(self):
        ops = make_search_space(10, num_groups=1)
        assert context_aware_search(ops).cost == pytest.approx(
            greedy_search(ops).cost
        )

    def test_strategy_label(self):
        ops = make_search_space(6, num_groups=2)
        assert context_aware_search(ops).strategy == "context-aware/greedy"
