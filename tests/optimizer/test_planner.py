"""Tests for Table 1 plan construction and combined plans (Section 4.2)."""

import pytest

from repro.algebra.context_ops import (
    ContextInitiation,
    ContextTermination,
    ContextWindowOperator,
)
from repro.algebra.pattern import PatternOperator
from repro.algebra.relational_ops import Filter, Projection
from repro.language import parse_query
from repro.optimizer.planner import (
    build_combined_plans,
    build_plans_for_queries,
    build_query_plan,
)


def op_types(plan):
    return [type(op).__name__ for op in plan.operators]


class TestIndividualPlans:
    def test_processing_query_plan_matches_figure_6a(self):
        """Initial plan order: pattern, filter, context window, projection."""
        query = parse_query(
            "DERIVE Toll(p.vid, p.sec, 5) PATTERN NewTravelingCar p "
            "WHERE p.lane != 'exit' CONTEXT congestion",
            name="q1",
        )
        plan = build_query_plan(query, "congestion")
        assert op_types(plan) == [
            "PatternOperator", "Filter", "ContextWindowOperator", "Projection",
        ]
        assert plan.context_name == "congestion"

    def test_processing_without_where(self):
        query = parse_query(
            "DERIVE Toll(p.vid) PATTERN Car p CONTEXT congestion", name="q"
        )
        plan = build_query_plan(query, "congestion")
        assert op_types(plan) == [
            "PatternOperator", "ContextWindowOperator", "Projection",
        ]

    def test_initiate_plan(self):
        query = parse_query(
            "INITIATE CONTEXT accident PATTERN Accident CONTEXT clear",
            name="q3",
        )
        plan = build_query_plan(query, "clear")
        assert op_types(plan) == [
            "PatternOperator", "ContextWindowOperator", "ContextInitiation",
        ]
        assert plan.operators[-1].context_name == "accident"

    def test_terminate_plan(self):
        query = parse_query(
            "TERMINATE CONTEXT accident PATTERN Cleared CONTEXT accident",
            name="q",
        )
        plan = build_query_plan(query, "accident")
        assert isinstance(plan.operators[-1], ContextTermination)

    def test_switch_plan_has_both_operators(self):
        """SWITCH CONTEXT c maps to CI_c plus CT_curr (Table 1)."""
        query = parse_query(
            "SWITCH CONTEXT clear PATTERN Stats s CONTEXT congestion",
            name="q",
        )
        plan = build_query_plan(query, "congestion")
        initiation = plan.operators[-2]
        termination = plan.operators[-1]
        assert isinstance(initiation, ContextInitiation)
        assert initiation.context_name == "clear"
        assert isinstance(termination, ContextTermination)
        assert termination.context_name == "congestion"

    def test_without_context_window(self):
        query = parse_query(
            "DERIVE Toll(p.vid) PATTERN Car p CONTEXT congestion", name="q"
        )
        plan = build_query_plan(query, "congestion", with_context_window=False)
        assert "ContextWindowOperator" not in op_types(plan)

    def test_retention_propagates(self):
        query = parse_query("DERIVE X(a.n) PATTERN A a", name="q")
        plan = build_query_plan(query, "c", retention=77)
        assert plan.pattern_operators[0].retention == 77


class TestPlansForQueries:
    def test_one_plan_per_query_context_pair(self):
        query = parse_query(
            "DERIVE X(a.n) PATTERN A a CONTEXT c1, c2", name="q"
        )
        plans = build_plans_for_queries([query])
        assert [p.context_name for p in plans] == ["c1", "c2"]
        assert [p.name for p in plans] == ["q@c1", "q@c2"]


class TestCombinedPlans:
    def test_grouped_by_context(self):
        q_congestion = parse_query(
            "DERIVE X(a.n) PATTERN A a CONTEXT congestion", name="q1"
        )
        q_clear = parse_query(
            "DERIVE Y(a.n) PATTERN A a CONTEXT clear", name="q2"
        )
        plans = build_plans_for_queries([q_congestion, q_clear])
        combined = build_combined_plans(plans)
        assert [c.context_name for c in combined] == ["congestion", "clear"]

    def test_producer_before_consumer(self):
        """Figure 6: the NewTravelingCar plan feeds the TollNotification
        plan inside one combined plan."""
        q2 = parse_query(
            "DERIVE NewTravelingCar(p2.vid, p2.sec) "
            "PATTERN SEQ(NOT PositionReport p1, PositionReport p2) "
            "WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid "
            "CONTEXT congestion",
            name="q2",
        )
        q1 = parse_query(
            "DERIVE Toll(p.vid, p.sec, 5) PATTERN NewTravelingCar p "
            "CONTEXT congestion",
            name="q1",
        )
        plans = build_plans_for_queries([q1, q2])
        [combined] = build_combined_plans(plans)
        assert [p.name for p in combined.plans] == [
            "q2@congestion", "q1@congestion",
        ]
