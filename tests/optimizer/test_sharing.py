"""Tests for shared execution of grouped context windows (Section 5.3)."""

from repro.algebra.expressions import attr
from repro.algebra.pattern import EventMatch
from repro.core.queries import EventQuery, QueryAction
from repro.core.windows import WindowSpec
from repro.events.types import EventType
from repro.optimizer.sharing import (
    ExecutionUnit,
    build_nonshared_workload,
    build_shared_workload,
    _merge_intervals,
)

OUT = EventType.define("Out", n="int")


def query(name, threshold):
    return EventQuery(
        name=name,
        action=QueryAction.DERIVE,
        pattern=EventMatch("A", "a"),
        where=attr("n", "a").gt(threshold),
        derive_type=OUT,
        derive_items=(("n", attr("n", "a")),),
    )


Q_SHARED = query("q_shared", 5)
Q_A = query("q_a", 1)
Q_B = query("q_b", 2)

SPECS = [
    WindowSpec("w1", start=0, end=30, queries=(Q_SHARED, Q_A)),
    WindowSpec("w2", start=20, end=50, queries=(Q_SHARED, Q_B)),
]


class TestIntervalMerge:
    def test_empty(self):
        assert _merge_intervals([]) == ()

    def test_disjoint_kept(self):
        assert _merge_intervals([(0, 5), (10, 15)]) == ((0, 5), (10, 15))

    def test_touching_coalesce(self):
        assert _merge_intervals([(0, 5), (5, 10)]) == ((0, 10),)

    def test_overlapping_coalesce(self):
        assert _merge_intervals([(0, 8), (5, 10)]) == ((0, 10),)

    def test_unsorted_input(self):
        assert _merge_intervals([(10, 15), (0, 5)]) == ((0, 5), (10, 15))


class TestSharedWorkload:
    def test_one_plan_per_distinct_query(self):
        workload = build_shared_workload(SPECS)
        assert workload.plan_count == 3  # q_shared, q_a, q_b
        assert workload.shared

    def test_shared_query_active_over_union(self):
        workload = build_shared_workload(SPECS)
        shared_unit = next(
            u for u in workload.units if "q_shared" in u.query_names
        )
        # active [0, 30) ∪ [20, 50) = [0, 50), merged into one interval so
        # partial matches survive across the grouped window boundaries
        assert shared_unit.intervals == ((0, 50),)

    def test_window_specific_queries_scoped(self):
        workload = build_shared_workload(SPECS)
        unit_a = next(u for u in workload.units if "q_a" in u.query_names)
        assert unit_a.intervals == ((0, 30),)

    def test_active_units_lookup(self):
        workload = build_shared_workload(SPECS)
        names_at_25 = {
            name
            for unit in workload.active_units(25)
            for name in unit.query_names
        }
        assert names_at_25 == {"q_shared", "q_a", "q_b"}
        names_at_40 = {
            name
            for unit in workload.active_units(40)
            for name in unit.query_names
        }
        assert names_at_40 == {"q_shared", "q_b"}

    def test_span(self):
        assert build_shared_workload(SPECS).span() == (0, 50)

    def test_identical_queries_in_different_windows_share_one_plan(self):
        clone = query("q_shared_clone", 5)  # same signature as Q_SHARED
        specs = [
            WindowSpec("w1", start=0, end=30, queries=(Q_SHARED,)),
            WindowSpec("w2", start=20, end=50, queries=(clone,)),
        ]
        workload = build_shared_workload(specs)
        assert workload.plan_count == 1


class TestNonSharedWorkload:
    def test_one_plan_per_window_query_pair(self):
        workload = build_nonshared_workload(SPECS)
        assert workload.plan_count == 4  # 2 windows × 2 queries
        assert not workload.shared

    def test_duplicated_query_runs_twice_in_overlap(self):
        workload = build_nonshared_workload(SPECS)
        active = workload.active_units(25)
        shared_instances = [
            u for u in active if "q_shared" in u.query_names
        ]
        assert len(shared_instances) == 2


class TestExecutionUnit:
    def test_active_at(self):
        unit = ExecutionUnit(
            plan=build_shared_workload(SPECS).units[0].plan,
            intervals=((0, 10), (20, 30)),
        )
        assert unit.active_at(0)
        assert not unit.active_at(10)
        assert unit.active_at(25)
        assert not unit.active_at(30)

    def test_total_active_length(self):
        unit = ExecutionUnit(
            plan=build_shared_workload(SPECS).units[0].plan,
            intervals=((0, 10), (20, 30)),
        )
        assert unit.total_active_length() == 20
