"""Tests for time propagation through plans (trailing negation plumbing)."""

from repro.algebra.expressions import attr
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import (
    EventMatch,
    NegatedSpec,
    PatternOperator,
    Sequence,
)
from repro.algebra.plan import CombinedQueryPlan, QueryPlan
from repro.algebra.relational_ops import Projection
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType

A = EventType.define("A", n="int")
B = EventType.define("B", n="int")
OUT = EventType.define("Out", n="int")
FINAL = EventType.define("Final", n="int")


def ctx(active=()):
    store = ContextWindowStore(["c1"], "default")
    for name in active:
        store.initiate(name, 0)
    return ExecutionContext(windows=store, now=0)


def trailing_plan():
    spec = Sequence(
        (EventMatch("A", "a"), NegatedSpec(EventMatch("B", "b"), within=10))
    )
    return QueryPlan(
        [PatternOperator(spec), Projection(OUT, [("n", attr("n", "a"))])],
        name="trailing",
    )


class TestQueryPlanAdvanceTime:
    def test_deadline_emission_flows_through_downstream_operators(self):
        plan = trailing_plan()
        context = ctx()
        assert plan.execute([Event(A, 0, {"n": 7})], context) == []
        out = plan.advance_time(11, context)
        assert [e.type_name for e in out] == ["Out"]
        assert out[0]["n"] == 7

    def test_no_emission_before_deadline(self):
        plan = trailing_plan()
        context = ctx()
        plan.execute([Event(A, 0, {"n": 7})], context)
        assert plan.advance_time(9, context) == []

    def test_suspended_plan_does_not_advance(self):
        spec = Sequence(
            (EventMatch("A", "a"), NegatedSpec(EventMatch("B", "b"), within=10))
        )
        from repro.algebra.context_ops import ContextWindowOperator

        plan = QueryPlan(
            [
                ContextWindowOperator("c1"),
                PatternOperator(spec),
                Projection(OUT, [("n", attr("n", "a"))]),
            ]
        )
        active = ctx(active=["c1"])
        plan.execute([Event(A, 0, {"n": 7})], active)
        inactive = ctx()  # c1 not active here
        assert plan.advance_time(50, inactive) == []

    def test_empty_batch_still_reaches_pending_state(self):
        """A batch with zero surviving events must still traverse operators
        that hold pending timed state (the _needs_time_signal path)."""
        plan = trailing_plan()
        context = ctx()
        plan.execute([Event(A, 0, {"n": 7})], context)
        # an empty execute at t past the deadline does not flush by itself
        # (process only sees events); advance_time is the flushing channel
        assert plan.execute([], context) == []
        assert len(plan.advance_time(20, context)) == 1


class TestCombinedPlanAdvanceTime:
    def test_flushed_match_feeds_consumer_plan(self):
        producer = trailing_plan()
        consumer = QueryPlan(
            [
                PatternOperator(EventMatch("Out", "o")),
                Projection(FINAL, [("n", attr("n", "o"))]),
            ],
            name="consumer",
        )
        combined = CombinedQueryPlan([producer, consumer])
        context = ctx()
        combined.execute([Event(A, 0, {"n": 3})], context)
        out = combined.advance_time(15, context)
        assert [e.type_name for e in out] == ["Final"]
        assert out[0]["n"] == 3

    def test_advance_without_pending_state_is_silent(self):
        combined = CombinedQueryPlan([trailing_plan()])
        assert combined.advance_time(100, ctx()) == []
