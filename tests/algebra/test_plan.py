"""Tests for query plans and combined plans (Section 4.2)."""

import pytest

from repro.algebra.context_ops import ContextWindowOperator
from repro.algebra.expressions import attr, const
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import EventMatch, PatternOperator, Sequence
from repro.algebra.plan import CombinedQueryPlan, QueryPlan, clone_operator
from repro.algebra.relational_ops import Filter, Projection
from repro.core.windows import ContextWindowStore
from repro.errors import PlanError
from repro.events.event import Event
from repro.events.types import EventType

A = EventType.define("A", n="int", sec="int")
MID = EventType.define("Mid", n="int")
OUT = EventType.define("Out", n="int")


def ev(t, n=0):
    return Event(A, t, {"n": n, "sec": t})


def make_ctx(active=()):
    store = ContextWindowStore(["c1", "c2"], "default")
    for name in active:
        store.initiate(name, 0)
    return ExecutionContext(windows=store, now=0)


def simple_plan(context="c1"):
    return QueryPlan(
        [
            PatternOperator(EventMatch("A", "x")),
            Filter(attr("n", "x").gt(0)),
            ContextWindowOperator(context),
            Projection(OUT, [("n", attr("n", "x"))]),
        ],
        name="simple",
        context_name=context,
    )


class TestQueryPlan:
    def test_requires_operators(self):
        with pytest.raises(PlanError, match="at least one"):
            QueryPlan([])

    def test_executes_pipeline(self):
        plan = simple_plan()
        out = plan.execute([ev(1, n=5), ev(1, n=0)], make_ctx(active=["c1"]))
        assert len(out) == 1
        assert out[0].type_name == "Out"
        assert out[0]["n"] == 5

    def test_inactive_context_blocks_output(self):
        plan = simple_plan()
        assert plan.execute([ev(1, n=5)], make_ctx()) == []

    def test_suspension_skips_upstream_operators(self):
        """With CW at the bottom, nothing above runs while suspended."""
        cw = ContextWindowOperator("c1")
        pattern = PatternOperator(EventMatch("A", "x"))
        plan = QueryPlan([cw, pattern])
        plan.execute([ev(1)], make_ctx())  # c1 inactive
        assert pattern.stats.invocations == 0

    def test_without_pushdown_pattern_busy_waits(self):
        pattern = PatternOperator(EventMatch("A", "x"))
        cw = ContextWindowOperator("c1")
        plan = QueryPlan([pattern, cw])
        plan.execute([ev(1)], make_ctx())  # c1 inactive
        assert pattern.stats.invocations == 1  # busy waiting

    def test_input_and_output_types(self):
        plan = simple_plan()
        assert plan.input_types() == {"A"}
        assert plan.output_type() == "Out"

    def test_describe_lists_operators_bottom_last(self):
        text = simple_plan().describe()
        lines = text.splitlines()
        # as in Figure 6, the bottom (pattern) operator is printed last
        assert lines[-1].strip().startswith("1. P[")
        assert lines[1].strip().startswith("4. PR[")

    def test_clone_is_fresh(self):
        plan = simple_plan()
        plan.execute([ev(1, n=5)], make_ctx(active=["c1"]))
        clone = plan.clone()
        assert clone.total_cost_units() == 0
        assert clone.state_size() == 0
        assert [op.name for op in clone.operators] == [
            op.name for op in plan.operators
        ]

    def test_reset_stats_and_state(self):
        plan = QueryPlan(
            [
                PatternOperator(
                    Sequence((EventMatch("A", "x"), EventMatch("A", "y")))
                )
            ]
        )
        plan.execute([ev(1)], make_ctx())
        assert plan.state_size() == 1
        plan.reset_state()
        assert plan.state_size() == 0
        plan.reset_stats()
        assert plan.total_cost_units() == 0

    def test_clone_unknown_operator_rejected(self):
        class Strange(PatternOperator.__bases__[0]):  # Operator
            def __init__(self):
                super().__init__("strange")

        with pytest.raises(PlanError, match="cannot clone"):
            clone_operator(Strange())


class TestCombinedQueryPlan:
    def producer_plan(self):
        return QueryPlan(
            [
                PatternOperator(EventMatch("A", "x")),
                Projection(MID, [("n", attr("n", "x"))]),
            ],
            name="producer",
            context_name="c1",
        )

    def consumer_plan(self):
        return QueryPlan(
            [
                PatternOperator(EventMatch("Mid", "m")),
                Projection(OUT, [("n", attr("n", "m"))]),
            ],
            name="consumer",
            context_name="c1",
        )

    def test_producer_feeds_consumer_within_batch(self):
        combined = CombinedQueryPlan(
            [self.consumer_plan(), self.producer_plan()]
        )
        out = combined.execute([ev(1, n=4)], make_ctx(active=["c1"]))
        assert [e.type_name for e in out] == ["Out"]
        assert out[0]["n"] == 4

    def test_topological_order(self):
        combined = CombinedQueryPlan(
            [self.consumer_plan(), self.producer_plan()]
        )
        assert [p.name for p in combined.plans] == ["producer", "consumer"]

    def test_intermediate_events_not_in_output(self):
        combined = CombinedQueryPlan(
            [self.producer_plan(), self.consumer_plan()]
        )
        out = combined.execute([ev(1, n=4)], make_ctx(active=["c1"]))
        assert all(e.type_name != "Mid" for e in out)

    def test_unconsumed_derivations_are_output(self):
        combined = CombinedQueryPlan([self.producer_plan()])
        out = combined.execute([ev(1, n=4)], make_ctx(active=["c1"]))
        assert [e.type_name for e in out] == ["Mid"]

    def test_cycle_detection(self):
        loop_a = QueryPlan(
            [
                PatternOperator(EventMatch("Mid", "m")),
                Projection(OUT, [("n", attr("n", "m"))]),
            ],
            name="a",
        )
        loop_b = QueryPlan(
            [
                PatternOperator(EventMatch("Out", "o")),
                Projection(MID, [("n", attr("n", "o"))]),
            ],
            name="b",
        )
        with pytest.raises(PlanError, match="cyclic"):
            CombinedQueryPlan([loop_a, loop_b])

    def test_clone(self):
        combined = CombinedQueryPlan(
            [self.producer_plan(), self.consumer_plan()]
        )
        clone = combined.clone()
        assert len(clone.plans) == len(combined.plans)
        assert clone.total_cost_units() == 0
