"""Tests for SEQ with negation — leading, interleaved and trailing NOT."""

from repro.algebra.expressions import attr
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import (
    EventMatch,
    NegatedSpec,
    PatternOperator,
    Sequence,
)
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType

A = EventType.define("A", n="int")
B = EventType.define("B", n="int")
REPORT = EventType.define("PositionReport", vid="int", sec="int")


def ev(event_type, t, **payload):
    payload.setdefault("n", 0)
    if event_type is REPORT:
        payload = {k: v for k, v in payload.items() if k != "n"}
    return Event(event_type, t, payload)


def ctx():
    return ExecutionContext(windows=ContextWindowStore([], "default"), now=0)


class TestInterleavedNegation:
    def spec(self, guard=None):
        return Sequence(
            (
                EventMatch("A", "a"),
                NegatedSpec(EventMatch("B", "b"), guard=guard),
                EventMatch("A", "c"),
            )
        )

    def test_match_without_blocker(self):
        op = PatternOperator(self.spec())
        op.process([ev(A, 1)], ctx())
        assert len(op.process([ev(A, 3)], ctx())) >= 1

    def test_blocked_by_event_in_gap(self):
        op = PatternOperator(self.spec())
        op.process([ev(A, 1)], ctx())
        op.process([ev(B, 2)], ctx())
        # the (1, 3) pairing is blocked; the only other pairing uses the
        # first A as start again which is also blocked
        matches = op.process([ev(A, 3)], ctx())
        assert all(
            not (m.binding["a"].timestamp < 2 < m.binding["c"].timestamp)
            for m in matches
        )

    def test_blocker_outside_gap_does_not_block(self):
        op = PatternOperator(self.spec())
        op.process([ev(B, 0)], ctx())  # before the sequence starts
        op.process([ev(A, 1)], ctx())
        assert len(op.process([ev(A, 3)], ctx())) >= 1

    def test_guard_limits_blocking(self):
        guard = attr("n", "b").eq(attr("n", "a"))
        op = PatternOperator(self.spec(guard))
        op.process([ev(A, 1, n=7)], ctx())
        op.process([ev(B, 2, n=99)], ctx())  # guard fails: n differs
        assert len(op.process([ev(A, 3, n=7)], ctx())) >= 1


class TestLeadingNegation:
    def make_op(self):
        """The paper's query 2: no report from the same vehicle 30 s ago."""
        guard = (attr("sec", "p1") + 30).eq(attr("sec", "p2")) & attr(
            "vid", "p1"
        ).eq(attr("vid", "p2"))
        spec = Sequence(
            (
                NegatedSpec(EventMatch("PositionReport", "p1"), guard=guard),
                EventMatch("PositionReport", "p2"),
            )
        )
        return PatternOperator(spec, retention=120)

    def test_first_report_matches(self):
        op = self.make_op()
        out = op.process([ev(REPORT, 0, vid=1, sec=0)], ctx())
        assert len(out) == 1

    def test_consecutive_report_blocked(self):
        op = self.make_op()
        op.process([ev(REPORT, 0, vid=1, sec=0)], ctx())
        assert op.process([ev(REPORT, 30, vid=1, sec=30)], ctx()) == []

    def test_report_after_gap_matches_again(self):
        op = self.make_op()
        op.process([ev(REPORT, 0, vid=1, sec=0)], ctx())
        # no report at 60, so the 90-report has no blocker at sec 60
        out = op.process([ev(REPORT, 90, vid=1, sec=90)], ctx())
        assert len(out) == 1

    def test_other_vehicle_does_not_block(self):
        op = self.make_op()
        op.process([ev(REPORT, 0, vid=1, sec=0)], ctx())
        out = op.process([ev(REPORT, 30, vid=2, sec=30)], ctx())
        assert len(out) == 1


class TestTrailingNegation:
    def make_op(self, guard=None, within=10):
        spec = Sequence(
            (
                EventMatch("A", "a"),
                NegatedSpec(EventMatch("B", "b"), guard=guard, within=within),
            )
        )
        return PatternOperator(spec)

    def test_emitted_after_deadline(self):
        op = self.make_op()
        assert op.process([ev(A, 0)], ctx()) == []  # pending
        out = op.on_time_advance(11, ctx())
        assert len(out) == 1
        assert out[0].binding["a"].timestamp == 0

    def test_not_emitted_before_deadline(self):
        op = self.make_op()
        op.process([ev(A, 0)], ctx())
        assert op.on_time_advance(9, ctx()) == []

    def test_blocked_by_negated_event_within_window(self):
        op = self.make_op()
        op.process([ev(A, 0)], ctx())
        op.process([ev(B, 5)], ctx())
        assert op.on_time_advance(20, ctx()) == []

    def test_negated_event_after_deadline_does_not_block(self):
        op = self.make_op()
        op.process([ev(A, 0)], ctx())
        out = op.process([ev(B, 11)], ctx())
        # the deadline (10) passed when B at 11 arrived → match flushes
        assert len(out) == 1

    def test_guarded_trailing_negation(self):
        guard = attr("n", "b").eq(attr("n", "a"))
        op = self.make_op(guard=guard)
        op.process([ev(A, 0, n=1)], ctx())
        op.process([ev(B, 5, n=2)], ctx())  # guard fails → does not block
        assert len(op.on_time_advance(11, ctx())) == 1
