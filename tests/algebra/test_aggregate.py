"""Tests for the windowed aggregation operator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.aggregate import AggregateFunction, AggregateOperator
from repro.algebra.expressions import attr
from repro.algebra.operators import ExecutionContext
from repro.algebra.plan import clone_operator
from repro.core.windows import ContextWindowStore
from repro.errors import PlanError
from repro.events.event import Event
from repro.events.types import EventType

REPORT = EventType.define("Report", vid="int", speed="int", seg="int")
STATS = EventType.define("Stats", seg="int", cars="int", avg_speed="float")


def ctx():
    return ExecutionContext(windows=ContextWindowStore([], "d"), now=0)


def report(t, vid=1, speed=50, seg=0):
    return Event(REPORT, t, {"vid": vid, "speed": speed, "seg": seg})


def make_op(**overrides):
    defaults = dict(
        window=60,
        group_by=("seg",),
        functions=(
            AggregateFunction("cars", "count_distinct", "vid"),
            AggregateFunction("avg_speed", "avg", "speed"),
        ),
    )
    defaults.update(overrides)
    return AggregateOperator("Report", STATS, **defaults)


class TestValidation:
    def test_needs_positive_window(self):
        with pytest.raises(PlanError, match="positive"):
            make_op(window=0)

    def test_needs_functions(self):
        with pytest.raises(PlanError, match="at least one function"):
            make_op(functions=())

    def test_unknown_function(self):
        with pytest.raises(PlanError, match="unknown aggregate"):
            AggregateFunction("x", "median", "speed")

    def test_non_count_needs_attribute(self):
        with pytest.raises(PlanError, match="needs an attribute"):
            AggregateFunction("x", "sum")

    def test_duplicate_output_names(self):
        with pytest.raises(PlanError, match="duplicate"):
            make_op(
                functions=(
                    AggregateFunction("seg", "count"),  # collides with group_by
                )
            )


class TestWindowing:
    def test_flush_on_crossing_boundary(self):
        op = make_op()
        assert op.process([report(10, vid=1), report(40, vid=2)], ctx()) == []
        out = op.process([report(70, vid=3)], ctx())
        assert len(out) == 1
        stats = out[0]
        assert stats.timestamp == 60  # window end
        assert stats["cars"] == 2
        assert stats["avg_speed"] == 50.0
        assert stats["seg"] == 0

    def test_flush_on_time_advance(self):
        op = make_op()
        op.process([report(10)], ctx())
        out = op.on_time_advance(60, ctx())
        assert len(out) == 1

    def test_no_flush_before_boundary(self):
        op = make_op()
        op.process([report(10)], ctx())
        assert op.on_time_advance(59, ctx()) == []

    def test_empty_windows_emit_nothing(self):
        op = make_op()
        op.process([report(10)], ctx())
        op.on_time_advance(60, ctx())
        # no events in [60, 120) — nothing to emit at 120
        assert op.on_time_advance(121, ctx()) == []

    def test_multiple_windows_flush_in_order(self):
        op = make_op()
        op.process([report(10)], ctx())
        # the next event jumps two windows ahead; both pending windows flush
        out = op.process([report(70)], ctx())
        assert [e.timestamp for e in out] == [60]
        out = op.process([report(200)], ctx())
        assert [e.timestamp for e in out] == [120]


class TestGrouping:
    def test_groups_emit_separately(self):
        op = make_op()
        op.process(
            [report(10, vid=1, seg=0), report(20, vid=2, seg=1)], ctx()
        )
        out = op.on_time_advance(60, ctx())
        assert {e["seg"] for e in out} == {0, 1}

    def test_distinct_count(self):
        op = make_op()
        op.process(
            [report(10, vid=1), report(20, vid=1), report(30, vid=2)], ctx()
        )
        [stats] = op.on_time_advance(60, ctx())
        assert stats["cars"] == 2


class TestFunctions:
    def test_all_functions(self):
        op = AggregateOperator(
            "Report",
            STATS,
            window=60,
            functions=(
                AggregateFunction("n", "count"),
                AggregateFunction("total", "sum", "speed"),
                AggregateFunction("mean", "avg", "speed"),
                AggregateFunction("slowest", "min", "speed"),
                AggregateFunction("fastest", "max", "speed"),
            ),
        )
        op.process(
            [report(1, speed=10), report(2, speed=20), report(3, speed=60)],
            ctx(),
        )
        [stats] = op.on_time_advance(60, ctx())
        assert stats["n"] == 3
        assert stats["total"] == 90
        assert stats["mean"] == 30
        assert stats["slowest"] == 10
        assert stats["fastest"] == 60

    def test_predicate_filtered_aggregate(self):
        op = AggregateOperator(
            "Report",
            STATS,
            window=60,
            functions=(
                AggregateFunction(
                    "stopped", "count_distinct", "vid",
                    predicate=attr("speed").eq(0),
                ),
            ),
        )
        op.process(
            [report(1, vid=1, speed=0), report(2, vid=2, speed=50),
             report(3, vid=1, speed=0)],
            ctx(),
        )
        [stats] = op.on_time_advance(60, ctx())
        assert stats["stopped"] == 1

    def test_other_types_ignored(self):
        other = EventType.define("Other", vid="int")
        op = make_op()
        op.process([Event(other, 10, {"vid": 9})], ctx())
        assert op.on_time_advance(60, ctx()) == []


class TestStateManagement:
    def test_state_size_and_reset(self):
        op = make_op()
        op.process([report(10, seg=0), report(10, seg=1)], ctx())
        assert op.state_size() == 2
        op.reset_state()
        assert op.state_size() == 0

    def test_expire(self):
        op = make_op()
        op.process([report(10)], ctx())
        assert op.expire_state_before(500) == 1
        assert op.state_size() == 0

    def test_clone(self):
        op = make_op()
        op.process([report(10)], ctx())
        clone = clone_operator(op)
        assert clone.state_size() == 0
        assert clone.window == op.window
        assert clone.functions == op.functions


class TestAgainstReference:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=300),  # time
                st.integers(min_value=1, max_value=4),  # vid
                st.integers(min_value=0, max_value=80),  # speed
            ),
            max_size=30,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_batch_reference(self, rows):
        rows.sort(key=lambda r: r[0])
        events = [report(t, vid=v, speed=s) for t, v, s in rows]
        op = make_op(group_by=())
        out = []
        for event in events:
            out.extend(op.process([event], ctx()))
        out.extend(op.on_time_advance(10_000, ctx()))
        # reference: bucket by window index
        buckets = {}
        for t, v, s in rows:
            buckets.setdefault(t // 60, []).append((v, s))
        assert len(out) == len(buckets)
        for stats in out:
            index = stats.timestamp // 60 - 1
            bucket = buckets[index]
            assert stats["cars"] == len({v for v, _ in bucket})
            expected_avg = sum(s for _, s in bucket) / len(bucket)
            assert stats["avg_speed"] == pytest.approx(expected_avg)
