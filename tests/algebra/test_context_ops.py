"""Tests for CI_c, CT_c and CW_c — the context operators (Section 4.1)."""

from repro.algebra.context_ops import (
    ContextInitiation,
    ContextTermination,
    ContextWindowOperator,
)
from repro.algebra.operators import ExecutionContext
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType

TRIGGER = EventType.define("Trigger", n="int")


def trigger(t):
    return Event(TRIGGER, t, {"n": 0})


def make_ctx():
    store = ContextWindowStore(["congestion", "accident"], "clear")
    return store, ExecutionContext(windows=store, now=0)


class TestContextInitiation:
    def test_initiation_opens_window_and_evicts_default(self):
        store, ctx = make_ctx()
        op = ContextInitiation("congestion")
        out = op.process([trigger(5)], ctx)
        assert out == [trigger(5)]  # pass-through by value
        assert store.is_active("congestion")
        assert not store.is_active("clear")

    def test_initiation_is_idempotent(self):
        store, ctx = make_ctx()
        op = ContextInitiation("congestion")
        op.process([trigger(5)], ctx)
        op.process([trigger(9)], ctx)
        # still exactly one open congestion window, started at 5
        window = store.open_window("congestion")
        assert window.start == 5
        assert store.initiation_count == 1

    def test_stats_accounting(self):
        _, ctx = make_ctx()
        op = ContextInitiation("congestion")
        op.process([trigger(1), trigger(1)], ctx)
        assert op.stats.invocations == 1
        assert op.stats.events_in == 2
        assert op.stats.events_out == 2


class TestContextTermination:
    def test_termination_closes_window(self):
        store, ctx = make_ctx()
        ContextInitiation("congestion").process([trigger(2)], ctx)
        ContextTermination("congestion").process([trigger(8)], ctx)
        assert not store.is_active("congestion")
        closed = store.closed[-1]
        assert (closed.context_name, closed.start, closed.end) == (
            "congestion", 2, 8,
        )

    def test_last_termination_restores_default(self):
        store, ctx = make_ctx()
        ContextInitiation("congestion").process([trigger(2)], ctx)
        ContextTermination("congestion").process([trigger(8)], ctx)
        assert store.is_active("clear")

    def test_termination_of_inactive_context_is_noop(self):
        store, ctx = make_ctx()
        ContextTermination("congestion").process([trigger(3)], ctx)
        assert store.termination_count == 0
        assert store.is_active("clear")

    def test_overlapping_contexts_keep_default_evicted(self):
        store, ctx = make_ctx()
        ContextInitiation("congestion").process([trigger(1)], ctx)
        ContextInitiation("accident").process([trigger(2)], ctx)
        ContextTermination("congestion").process([trigger(3)], ctx)
        # accident still holds, so the default must not return
        assert store.is_active("accident")
        assert not store.is_active("clear")


class TestContextWindowOperator:
    def test_passes_events_while_active(self):
        store, ctx = make_ctx()
        store.initiate("congestion", 0)
        op = ContextWindowOperator("congestion")
        events = [trigger(1), trigger(1)]
        assert op.process(events, ctx) == events

    def test_drops_events_while_inactive(self):
        _, ctx = make_ctx()
        op = ContextWindowOperator("congestion")
        assert op.process([trigger(1)], ctx) == []

    def test_suspends_pipeline_when_inactive(self):
        _, ctx = make_ctx()
        op = ContextWindowOperator("congestion")
        assert op.suspends_pipeline(ctx) is True
        assert op.stats.suspensions == 1

    def test_does_not_suspend_when_active(self):
        store, ctx = make_ctx()
        store.initiate("congestion", 0)
        op = ContextWindowOperator("congestion")
        assert op.suspends_pipeline(ctx) is False

    def test_default_context_window(self):
        _, ctx = make_ctx()
        op = ContextWindowOperator("clear")
        # the default holds at startup
        assert op.suspends_pipeline(ctx) is False

    def test_constant_cost_per_batch(self):
        store, ctx = make_ctx()
        store.initiate("congestion", 0)
        op = ContextWindowOperator("congestion")
        op.process([trigger(1)] * 100, ctx)
        op.process([trigger(2)], ctx)
        # cost is charged per batch, not per event (Section 5.1)
        assert op.stats.cost_units == 2 * op.unit_cost
