"""Property test: the incremental pattern matcher against a brute-force
reference implementation of the Section 4.1 semantics.

The reference enumerates *all* combinations of events (skip-till-any-match)
with strictly increasing timestamps and checks negation by scanning the
full stream — exponential, but unambiguously correct for small inputs.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import attr
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import (
    EventMatch,
    NegatedSpec,
    PatternOperator,
    Sequence,
)
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.types import EventType

A = EventType.define("A", n="int")
B = EventType.define("B", n="int")
C = EventType.define("C", n="int")
TYPES = {"A": A, "B": B, "C": C}


def ctx():
    return ExecutionContext(windows=ContextWindowStore([], "d"), now=0)


def reference_sequence_matches(events, positives, gap_negations):
    """All bindings per Section 4.1's SEQ semantics.

    ``positives`` is a list of (type_name, var); ``gap_negations[i]`` lists
    (type_name, guard) forbidden strictly between positive i-1 and i (for
    i = 0: any earlier event blocks).
    """
    matches = []
    candidates = [
        [e for e in events if e.type_name == type_name]
        for type_name, _ in positives
    ]
    for combo in itertools.product(*candidates):
        times = [e.timestamp for e in combo]
        if any(b <= a for a, b in zip(times, times[1:])):
            continue
        binding = {var: event for (_, var), event in zip(positives, combo)}
        blocked = False
        for index, negations in enumerate(gap_negations):
            low = times[index - 1] if index > 0 else float("-inf")
            high = times[index] if index < len(times) else float("inf")
            for type_name, guard in negations:
                for event in events:
                    if event.type_name != type_name or event in combo:
                        continue
                    if not (low < event.timestamp < high):
                        continue
                    guard_binding = dict(binding)
                    guard_binding["neg"] = event
                    if guard is None or bool(guard.evaluate(guard_binding)):
                        blocked = True
                        break
                if blocked:
                    break
            if blocked:
                break
        if not blocked:
            matches.append(binding)
    return matches


def binding_key(binding):
    return tuple(
        sorted((var, e.timestamp, e["n"]) for var, e in binding.items())
    )


events_strategy = st.lists(
    st.tuples(
        st.sampled_from(["A", "B", "C"]),
        st.integers(min_value=0, max_value=100),
    ),
    min_size=0,
    max_size=14,
).map(
    lambda pairs: [
        Event(TYPES[name], t, {"n": i})
        for i, (name, t) in enumerate(sorted(pairs, key=lambda p: p[1]))
    ]
)


class TestAgainstReference:
    @given(events_strategy)
    @settings(max_examples=120, deadline=None)
    def test_plain_sequence(self, events):
        spec = Sequence((EventMatch("A", "x"), EventMatch("B", "y")))
        op = PatternOperator(spec, retention=1000)
        incremental = []
        for event in events:
            incremental.extend(op.process([event], ctx()))
        expected = reference_sequence_matches(
            events, [("A", "x"), ("B", "y")], [[], []]
        )
        assert sorted(binding_key(m.binding) for m in incremental) == sorted(
            binding_key(b) for b in expected
        )

    @given(events_strategy)
    @settings(max_examples=120, deadline=None)
    def test_three_step_sequence(self, events):
        spec = Sequence(
            (EventMatch("A", "x"), EventMatch("B", "y"), EventMatch("C", "z"))
        )
        op = PatternOperator(spec, retention=1000)
        incremental = []
        for event in events:
            incremental.extend(op.process([event], ctx()))
        expected = reference_sequence_matches(
            events, [("A", "x"), ("B", "y"), ("C", "z")], [[], [], []]
        )
        assert sorted(binding_key(m.binding) for m in incremental) == sorted(
            binding_key(b) for b in expected
        )

    @given(events_strategy)
    @settings(max_examples=120, deadline=None)
    def test_interleaved_negation(self, events):
        spec = Sequence(
            (
                EventMatch("A", "x"),
                NegatedSpec(EventMatch("C", "neg")),
                EventMatch("B", "y"),
            )
        )
        op = PatternOperator(spec, retention=1000)
        incremental = []
        for event in events:
            incremental.extend(op.process([event], ctx()))
        expected = reference_sequence_matches(
            events, [("A", "x"), ("B", "y")], [[], [("C", None)], []]
        )
        assert sorted(binding_key(m.binding) for m in incremental) == sorted(
            binding_key(b) for b in expected
        )

    @given(events_strategy)
    @settings(max_examples=120, deadline=None)
    def test_guarded_interleaved_negation(self, events):
        guard = attr("n", "neg").gt(attr("n", "x"))
        spec = Sequence(
            (
                EventMatch("A", "x"),
                NegatedSpec(EventMatch("C", "neg"), guard=guard),
                EventMatch("B", "y"),
            )
        )
        op = PatternOperator(spec, retention=1000)
        incremental = []
        for event in events:
            incremental.extend(op.process([event], ctx()))
        expected = reference_sequence_matches(
            events, [("A", "x"), ("B", "y")], [[], [("C", guard)], []]
        )
        assert sorted(binding_key(m.binding) for m in incremental) == sorted(
            binding_key(b) for b in expected
        )

    @given(events_strategy)
    @settings(max_examples=100, deadline=None)
    def test_batch_vs_single_event_feeding(self, events):
        """Feeding whole same-timestamp batches equals event-at-a-time."""
        spec = Sequence((EventMatch("A", "x"), EventMatch("B", "y")))
        one_by_one = PatternOperator(spec, retention=1000)
        batched = PatternOperator(spec, retention=1000)
        single_out = []
        for event in events:
            single_out.extend(one_by_one.process([event], ctx()))
        batch_out = []
        for _, group in itertools.groupby(events, key=lambda e: e.timestamp):
            batch_out.extend(batched.process(list(group), ctx()))
        assert sorted(binding_key(m.binding) for m in single_out) == sorted(
            binding_key(m.binding) for m in batch_out
        )
