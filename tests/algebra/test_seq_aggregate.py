"""Online SEQ-match aggregation: operators, eligibility, and properties.

The hypothesis properties pit the incremental path against a *brute-force*
oracle written here from the SEQ semantics directly (enumerate every
strictly-time-increasing pair, group by completion timestamp) — not
against :class:`MatchAggregateProjection`, so a shared bug in the two
shipped paths cannot hide.  Streams include simultaneous and negative
timestamps and events missing aggregation attributes.

Event type names must be identifiers, so a ``"+"``-named *derived type*
is impossible by construction (asserted below) — but query *names* are
free-form strings and the workload fuser joins them with ``"+"`` when
labelling fused plans, so the sharing property deliberately uses names
containing ``"+"`` to prove the label is cosmetic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.aggregate import MatchAggregate
from repro.algebra.expressions import attr, const
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import EventMatch, NegatedSpec, Sequence
from repro.algebra.seq_aggregate import (
    AggregateOutput,
    PatternAggregateOperator,
    online_aggregation_supported,
)
from repro.api import EngineConfig, create_engine
from repro.core.model import CaesarModel
from repro.core.windows import ContextWindowStore, WindowSpec
from repro.errors import PlanError, SchemaError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.optimizer.sharing import (
    build_nonshared_workload,
    build_shared_workload,
)
from repro.runtime.engine import ScheduledWorkloadEngine

TICK = EventType.define("SAggTick", v="int")
OUT = EventType.define("SAggOut", count="int", s="int", lo="int", hi="int")

RETENTION = 100_000  # beyond every generated time span: expiry never fires


def _ctx():
    return ExecutionContext(windows=ContextWindowStore([], "default"), now=0)


def pair_operator(**kwargs):
    return PatternAggregateOperator(
        Sequence((EventMatch("SAggTick", "a"), EventMatch("SAggTick", "b"))),
        (AggregateOutput(OUT, (
            MatchAggregate("count", "count"),
            MatchAggregate("s", "sum", "a", "v"),
            MatchAggregate("lo", "min", "b", "v"),
            MatchAggregate("hi", "max", "b", "v"),
        )),),
        retention=RETENTION,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# eligibility
# ---------------------------------------------------------------------------


class TestEligibility:
    SEQ = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))

    def test_flat_sequence_and_single_match_supported(self):
        assert online_aggregation_supported(self.SEQ, None)
        assert online_aggregation_supported(EventMatch("A", "a"), None)

    def test_single_variable_conjuncts_supported(self):
        where = attr("v", "a").gt(const(3)) & attr("v", "b").le(const(9))
        assert online_aggregation_supported(self.SEQ, where)

    def test_negation_unsupported(self):
        negated = Sequence((
            EventMatch("A", "a"),
            NegatedSpec(EventMatch("B", "b")),
            EventMatch("C", "c"),
        ))
        assert not online_aggregation_supported(negated, None)

    def test_cross_variable_predicate_unsupported(self):
        where = attr("v", "a").lt(attr("v", "b"))
        assert not online_aggregation_supported(self.SEQ, where)

    def test_foreign_variable_predicate_unsupported(self):
        assert not online_aggregation_supported(
            self.SEQ, attr("v", "z").gt(const(0))
        )


class TestConstruction:
    def test_rejects_negation(self):
        negated = Sequence((
            EventMatch("SAggTick", "a"),
            NegatedSpec(EventMatch("SAggTick", "x")),
            EventMatch("SAggTick", "b"),
        ))
        with pytest.raises(PlanError, match="not eligible"):
            PatternAggregateOperator(
                negated,
                (AggregateOutput(OUT, (MatchAggregate("count", "count"),)),),
            )

    def test_rejects_cross_variable_predicate(self):
        with pytest.raises(PlanError, match="not eligible"):
            pair_operator(where=attr("v", "a").lt(attr("v", "b")))

    def test_rejects_empty_outputs(self):
        with pytest.raises(PlanError, match="at least one output"):
            PatternAggregateOperator(EventMatch("SAggTick", "a"), ())

    def test_rejects_nonpositive_retention(self):
        with pytest.raises(PlanError, match="retention"):
            PatternAggregateOperator(
                EventMatch("SAggTick", "a"),
                (AggregateOutput(OUT, (MatchAggregate("count", "count"),)),),
                retention=0,
            )

    def test_rejects_unknown_aggregate_variable(self):
        with pytest.raises(PlanError, match="unknown pattern variable"):
            PatternAggregateOperator(
                EventMatch("SAggTick", "a"),
                (AggregateOutput(OUT, (
                    MatchAggregate("s", "sum", "z", "v"),
                )),),
            )

    def test_aggregate_output_rejects_duplicate_names(self):
        with pytest.raises(PlanError, match="duplicate"):
            AggregateOutput(OUT, (
                MatchAggregate("count", "count"),
                MatchAggregate("count", "sum", "a", "v"),
            ))

    def test_aggregate_output_rejects_empty_columns(self):
        with pytest.raises(PlanError, match="at least one"):
            AggregateOutput(OUT, ())

    def test_plus_named_derived_type_is_impossible(self):
        # the fused-plan label joins output names with "+"; the schema
        # layer guarantees no real type name can collide with that
        with pytest.raises(SchemaError, match="invalid event type name"):
            EventType("Agg+Out")


# ---------------------------------------------------------------------------
# hand-computed evaluation
# ---------------------------------------------------------------------------


class TestEvaluation:
    def events(self, *values):
        return [
            Event(TICK, t + 1, {"v": v}) for t, v in enumerate(values)
        ]

    def test_pair_aggregates_by_completion_time(self):
        operator = pair_operator()
        out = operator.process(self.events(5, 7, 9), _ctx())
        assert [(e.timestamp, dict(e.payload)) for e in out] == [
            (2, {"count": 1, "s": 5, "lo": 7, "hi": 7}),
            (3, {"count": 2, "s": 12, "lo": 9, "hi": 9}),
        ]
        assert operator.matches_aggregated == 3

    def test_interval_start_is_earliest_contributor(self):
        operator = pair_operator()
        out = operator.process(self.events(5, 7), _ctx())
        assert out[0].time.start == 1
        assert out[0].timestamp == 2

    def test_simultaneous_events_never_pair(self):
        operator = pair_operator()
        events = [Event(TICK, 4, {"v": 1}), Event(TICK, 4, {"v": 2})]
        assert operator.process(events, _ctx()) == []

    def test_missing_attribute_contributes_no_match(self):
        # the second event lacks the aggregation target entirely: the pair
        # (e1, e2) is unusable and must not surface in *any* column, count
        # included — the oracle's usability rule
        operator = pair_operator()
        events = [
            Event(TICK, 1, {"v": 5}),
            Event(TICK, 2, {}),
            Event(TICK, 3, {"v": 9}),
        ]
        out = operator.process(events, _ctx())
        assert [(e.timestamp, e.payload["count"]) for e in out] == [(3, 1)]

    def test_stage_predicates_gate_admission(self):
        operator = pair_operator(
            where=attr("v", "a").gt(const(4)) & attr("v", "b").gt(const(8))
        )
        out = operator.process(self.events(3, 5, 7, 9), _ctx())
        # admissible firsts: 5, 7; admissible seconds: 9
        assert [(e.timestamp, dict(e.payload)) for e in out] == [
            (4, {"count": 2, "s": 12, "lo": 9, "hi": 9}),
        ]

    def test_fused_outputs_share_one_pass(self):
        other = EventType.define("SAggOut2", n="int")
        operator = PatternAggregateOperator(
            Sequence((
                EventMatch("SAggTick", "a"), EventMatch("SAggTick", "b"),
            )),
            (
                AggregateOutput(OUT, (
                    MatchAggregate("count", "count"),
                    MatchAggregate("s", "sum", "a", "v"),
                    MatchAggregate("lo", "min", "b", "v"),
                    MatchAggregate("hi", "max", "b", "v"),
                )),
                AggregateOutput(other, (MatchAggregate("n", "count"),)),
            ),
            retention=RETENTION,
        )
        out = operator.process(self.events(5, 7), _ctx())
        assert [(e.type_name, e.timestamp) for e in out] == [
            ("SAggOut", 2), ("SAggOut2", 2),
        ]
        assert out[1].payload == {"n": 1}

    def test_snapshot_restore_resumes_identically(self):
        first, rest = self.events(5, 7, 9, 2, 8)[:2], \
            self.events(5, 7, 9, 2, 8)[2:]
        straight = pair_operator()
        straight.process(first, _ctx())
        snapshot = straight.snapshot_state()
        expected = straight.process(rest, _ctx())

        resumed = pair_operator()
        resumed.restore_state(snapshot)
        replayed = resumed.process(rest, _ctx())
        assert [(e.timestamp, dict(e.payload)) for e in replayed] == [
            (e.timestamp, dict(e.payload)) for e in expected
        ]

    def test_reset_state_clears_waiting_summaries(self):
        operator = pair_operator()
        operator.process(self.events(5, 7), _ctx())
        assert operator.state_size() > 0
        operator.reset_state()
        assert operator.state_size() == 0
        assert operator.process(self.events(9), _ctx()) == []


# ---------------------------------------------------------------------------
# hypothesis: online == brute force
# ---------------------------------------------------------------------------


PROP_MODEL_QUERY = (
    "DERIVE SAggOut(COUNT(*), SUM(a.v), MIN(b.v), MAX(b.v)) "
    "PATTERN SEQ(SAggTick a, SAggTick b) "
    "WHERE a.v > 3 AND b.v < 17 CONTEXT always"
)


def prop_model() -> CaesarModel:
    model = CaesarModel(default_context="always")
    model.add_query(parse_query(PROP_MODEL_QUERY, name="prop"))
    return model


def brute_force(events):
    """SEQ pair aggregation straight from the semantics: every pair with
    strictly increasing timestamps and admissible values, grouped by the
    completion (second) timestamp."""
    matches = [
        (a, b)
        for a in events
        for b in events
        if a.timestamp < b.timestamp
        and "v" in a and a["v"] > 3
        and "v" in b and b["v"] < 17
    ]
    groups: dict = {}
    for a, b in matches:
        groups.setdefault(b.timestamp, []).append((a, b))
    rows = []
    for t in sorted(groups):
        pairs = groups[t]
        rows.append((
            min(a.time.start for a, _ in pairs),
            t,
            {
                "count": len(pairs),
                "v": sum(a["v"] for a, _ in pairs),
                "v2": min(b["v"] for _, b in pairs),
                "v3": max(b["v"] for _, b in pairs),
            },
        ))
    return rows


@st.composite
def tick_streams(draw):
    times = sorted(draw(st.lists(
        st.integers(min_value=-40, max_value=120), min_size=0, max_size=30,
    )))
    events = []
    for t in times:
        if draw(st.booleans()):
            payload = {"v": draw(st.integers(min_value=-5, max_value=25))}
        else:
            payload = {}  # missing aggregation attribute
        events.append(Event(TICK, t, payload))
    return events


def run_mode(events, mode):
    engine = create_engine(prop_model(), EngineConfig(
        retention=RETENTION, aggregation=mode,
    ))
    report = engine.run(EventStream(iter(events)), track_outputs=True)
    return [
        (e.time.start, e.timestamp, dict(e.payload))
        for e in report.outputs
        if e.type_name == "SAggOut"
    ]


class TestOnlineEqualsBruteForce:
    @given(tick_streams())
    @settings(max_examples=60, deadline=None)
    def test_online_matches_oracle(self, events):
        assert run_mode(events, "online") == brute_force(events)

    @given(tick_streams())
    @settings(max_examples=30, deadline=None)
    def test_materialize_matches_oracle_too(self, events):
        assert run_mode(events, "materialize") == brute_force(events)


# ---------------------------------------------------------------------------
# hypothesis: shared == nonshared (aggregate-state fusion)
# ---------------------------------------------------------------------------


def fused_window_specs():
    """Identical-span windows carrying fusable aggregates whose query
    names contain '+': same pattern and predicate, different columns."""
    q_count = parse_query(
        "DERIVE FuseCount(COUNT(*)) "
        "PATTERN SEQ(SAggTick a, SAggTick b) WHERE a.v > 3",
        name="fuse+count")
    q_stats = parse_query(
        "DERIVE FuseStats(SUM(a.v), MAX(b.v)) "
        "PATTERN SEQ(SAggTick a, SAggTick b) WHERE a.v > 3",
        name="fuse+stats")
    return [
        WindowSpec("early", start=0, end=200, queries=(q_count,)),
        WindowSpec("late", start=0, end=200, queries=(q_stats,)),
    ]


def run_workload(builder, events):
    engine = ScheduledWorkloadEngine(
        builder(fused_window_specs(), retention=RETENTION)
    )
    report = engine.run(EventStream(iter(events)), track_outputs=True)
    return sorted(
        (e.timestamp, e.type_name, tuple(sorted(e.payload.items())))
        for e in report.outputs
    )


class TestSharedStateParity:
    @given(tick_streams())
    @settings(max_examples=30, deadline=None)
    def test_fused_equals_separate(self, events):
        # attribute-total streams: fusion's union-of-targets admission
        # rule (see test_union_admission_is_the_fused_semantics) only
        # coincides with per-query admission when every event carries
        # every aggregation attribute, which real typed streams do
        events = [
            e if "v" in e else Event(TICK, e.timestamp, {"v": 7})
            for e in events
            if e.timestamp >= 0
        ]
        shared = run_workload(build_shared_workload, events)
        nonshared = run_workload(build_nonshared_workload, events)
        assert shared == nonshared

    def test_union_admission_is_the_fused_semantics(self):
        """A fused operator admits an event only if it carries *every*
        aggregation attribute of the union across fused outputs — so a
        count-only query fused with a stats query adopts the stats
        query's attribute requirement.  On schema-total streams (every
        typed event carries its attributes) this is unobservable; the
        parity property above therefore generates total streams."""
        events = [
            Event(TICK, 1, {"v": 5}),
            Event(TICK, 2, {}),  # missing the fused target b.v
        ]
        shared = run_workload(build_shared_workload, events)
        nonshared = run_workload(build_nonshared_workload, events)
        # standalone FuseCount needs no b.v: it counts the pair
        assert (2, "FuseCount", (("count", 1),)) in nonshared
        # the fused pass drops the pair for every output
        assert shared == []

    def test_fusion_actually_happened(self):
        workload = build_shared_workload(
            fused_window_specs(), retention=RETENTION
        )
        aggregate_ops = [
            op
            for unit in workload.units
            for op in unit.plan.operators
            if isinstance(op, PatternAggregateOperator)
        ]
        assert len(aggregate_ops) == 1
        assert [o.event_type.name for o in aggregate_ops[0].outputs] == [
            "FuseCount", "FuseStats",
        ]
        names = {unit.plan.name for unit in workload.units}
        assert any("fuse+count+fuse+stats" in name for name in names)
