"""Tests for the WHERE-predicate expression trees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import (
    And,
    AttrRef,
    BinaryOp,
    Constant,
    Not,
    Or,
    attr,
    binding_from_event,
    conjoin,
    conjuncts,
    const,
)
from repro.errors import ExpressionError
from repro.events.event import Event
from repro.events.types import EventType

REPORT = EventType.define("Report", vid="int", sec="int", lane="str")


def bind(**attrs):
    """A binding with one event per keyword: bind(p={'vid': 1})."""
    return {
        var: Event(REPORT, 0, payload) for var, payload in attrs.items()
    }


class TestLeaves:
    def test_constant(self):
        assert const(5).evaluate({}) == 5
        assert const("exit").attributes() == set()

    def test_attr_ref_qualified(self):
        binding = bind(p={"vid": 9, "sec": 0, "lane": "exit"})
        assert AttrRef("p", "vid").evaluate(binding) == 9

    def test_attr_ref_unqualified_single_event(self):
        event = Event(REPORT, 0, {"vid": 3, "sec": 0, "lane": "x"})
        assert attr("vid").evaluate(binding_from_event(event)) == 3

    def test_attr_ref_unbound_variable(self):
        with pytest.raises(ExpressionError, match="no event bound"):
            AttrRef("q", "vid").evaluate(bind(p={"vid": 1, "sec": 0, "lane": ""}))

    def test_attr_ref_missing_attribute(self):
        binding = {"p": Event(REPORT, 0, {"vid": 1})}
        with pytest.raises(ExpressionError, match="no attribute"):
            AttrRef("p", "speed").evaluate(binding)

    def test_attributes_extraction(self):
        expr = (attr("sec", "p1") + 30).eq(attr("sec", "p2"))
        assert expr.attributes() == {("p1", "sec"), ("p2", "sec")}
        assert expr.variables() == {"p1", "p2"}


class TestArithmetic:
    def test_operations(self):
        binding = bind(p={"vid": 10, "sec": 4, "lane": ""})
        v = attr("vid", "p")
        assert (v + 5).evaluate(binding) == 15
        assert (v - 5).evaluate(binding) == 5
        assert (v * 2).evaluate(binding) == 20
        assert (v / 4).evaluate(binding) == 2.5

    def test_division_by_zero(self):
        with pytest.raises(ExpressionError, match="division by zero"):
            (const(1) / const(0)).evaluate({})

    def test_type_mismatch(self):
        with pytest.raises(ExpressionError, match="cannot apply"):
            (const("a") - const(1)).evaluate({})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError, match="unknown binary operator"):
            BinaryOp("%", const(1), const(2))


class TestComparisons:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("=", 3, 3, True),
            ("=", 3, 4, False),
            ("!=", 3, 4, True),
            (">", 4, 3, True),
            (">=", 3, 3, True),
            ("<", 3, 4, True),
            ("<=", 4, 3, False),
        ],
    )
    def test_comparison_table(self, op, left, right, expected):
        assert BinaryOp(op, const(left), const(right)).evaluate({}) is expected

    def test_is_comparison_flag(self):
        assert BinaryOp("=", const(1), const(1)).is_comparison
        assert not BinaryOp("+", const(1), const(1)).is_comparison


class TestLogic:
    def test_and_or_not(self):
        t, f = const(True), const(False)
        assert And(t, t).evaluate({}) is True
        assert And(t, f).evaluate({}) is False
        assert Or(f, t).evaluate({}) is True
        assert Or(f, f).evaluate({}) is False
        assert Not(f).evaluate({}) is True

    def test_short_circuit_and(self):
        # right side would raise; short circuit avoids it
        bad = AttrRef("missing", "x")
        assert And(const(False), bad).evaluate({}) is False

    def test_short_circuit_or(self):
        bad = AttrRef("missing", "x")
        assert Or(const(True), bad).evaluate({}) is True

    def test_operator_sugar(self):
        expr = const(True) & const(False) | ~const(False)
        assert expr.evaluate({}) is True


class TestConjunctHelpers:
    def test_conjuncts_flattens(self):
        a, b, c = const(1), const(2), const(3)
        expr = And(And(a, b), c)
        assert conjuncts(expr) == [a, b, c]

    def test_conjuncts_of_non_conjunction(self):
        expr = Or(const(1), const(2))
        assert conjuncts(expr) == [expr]

    def test_conjoin_empty_is_true(self):
        assert conjoin([]).evaluate({}) is True

    def test_conjoin_roundtrip(self):
        parts = [const(True), const(True), const(False)]
        assert conjoin(parts).evaluate({}) is False

    def test_conjoin_single(self):
        single = const(42)
        assert conjoin([single]) is single


# Random expression trees for the compile/evaluate parity check.  "speed"
# is never present in the generated payloads, so referencing it drives the
# missing-attribute ExpressionError path; unbound variables come from
# bindings that omit "p" or "q".
_PARITY_VARS = ("p", "q")
_PARITY_ATTRS = ("vid", "sec", "lane", "speed")

_parity_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.sampled_from(["exit", "middle", ""]),
)

_parity_leaves = st.one_of(
    st.builds(Constant, _parity_values),
    st.builds(
        AttrRef, st.sampled_from(_PARITY_VARS + ("",)), st.sampled_from(_PARITY_ATTRS)
    ),
)

_parity_ops = st.sampled_from(
    ["+", "-", "*", "/", "=", "!=", ">", ">=", "<", "<="]
)

_parity_exprs = st.recursive(
    _parity_leaves,
    lambda children: st.one_of(
        st.builds(BinaryOp, _parity_ops, children, children),
        st.builds(And, children, children),
        st.builds(Or, children, children),
        st.builds(Not, children),
    ),
    max_leaves=12,
)

_parity_bindings = st.fixed_dictionaries(
    {},
    optional={
        var: st.fixed_dictionaries(
            {"vid": st.integers(0, 50), "sec": st.integers(0, 100)},
            optional={"lane": st.sampled_from(["exit", "middle"])},
        )
        for var in _PARITY_VARS
    },
)


class TestCompiledParity:
    """The compiled closures must agree with the interpreted walker.

    ``Expr.compile()`` is the hot-path twin of ``Expr.evaluate()``: same
    value on success, same ``ExpressionError`` message on failure.  We
    check both over random expression trees, deliberately including
    references to unbound variables and missing attributes so the error
    paths are exercised too.
    """

    @settings(max_examples=60, deadline=None)
    @given(expr=_parity_exprs, payloads=_parity_bindings)
    def test_compile_matches_evaluate(self, expr, payloads):
        binding = {
            var: Event(REPORT, 0, payload) for var, payload in payloads.items()
        }
        compiled = expr.compile()
        try:
            expected = expr.evaluate(binding)
        except ExpressionError as exc:
            with pytest.raises(ExpressionError) as caught:
                compiled(binding)
            assert str(caught.value) == str(exc)
        else:
            got = compiled(binding)
            assert got == expected
            assert type(got) is type(expected)

    def test_compile_is_memoized(self):
        expr = (attr("sec", "p") + 30).eq(attr("sec", "q"))
        assert expr.compile() is expr.compile()

    def test_compiled_unqualified_self_fallback(self):
        event = Event(REPORT, 0, {"vid": 3, "sec": 0, "lane": "x"})
        fn = attr("vid").compile()
        assert fn({"the_only_var": event}) == 3

    def test_compiled_short_circuit(self):
        bad = AttrRef("missing", "x")
        assert And(const(False), bad).compile()({}) is False
        assert Or(const(True), bad).compile()({}) is True


class TestPaperPredicates:
    def test_query2_predicate(self):
        """p1.sec + 30 = p2.sec AND p1.vid = p2.vid (Figure 3, query 2)."""
        predicate = (attr("sec", "p1") + 30).eq(attr("sec", "p2")) & attr(
            "vid", "p1"
        ).eq(attr("vid", "p2"))
        match = bind(
            p1={"vid": 1, "sec": 0, "lane": "middle"},
            p2={"vid": 1, "sec": 30, "lane": "middle"},
        )
        assert predicate.evaluate(match) is True
        wrong_gap = bind(
            p1={"vid": 1, "sec": 0, "lane": "middle"},
            p2={"vid": 1, "sec": 60, "lane": "middle"},
        )
        assert predicate.evaluate(wrong_gap) is False

    def test_lane_exclusion(self):
        predicate = attr("lane", "p2").ne("exit")
        assert predicate.evaluate(bind(p2={"vid": 1, "sec": 0, "lane": "middle"}))
        assert not predicate.evaluate(bind(p2={"vid": 1, "sec": 0, "lane": "exit"}))

    def test_str_rendering(self):
        expr = (attr("sec", "p1") + 30).eq(attr("sec", "p2"))
        assert str(expr) == "((p1.sec + 30) = p2.sec)"
