"""Tests for FL_θ (filter) and PR_{A,E} (projection)."""

from repro.algebra.expressions import attr, const
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import MatchEvent
from repro.algebra.relational_ops import Filter, Projection
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.timebase import TimeInterval
from repro.events.types import EventType

REPORT = EventType.define("Report", vid="int", sec="int", speed="int")
TOLL = EventType.define("TollNotification", vid="int", sec="int", toll="int")


def ctx():
    return ExecutionContext(
        windows=ContextWindowStore([], "default"), now=0
    )


def report(t, vid=1, speed=50):
    return Event(REPORT, t, {"vid": vid, "sec": t, "speed": speed})


class TestFilter:
    def test_keeps_satisfying_events(self):
        op = Filter(attr("speed").gt(40))
        fast, slow = report(0, speed=60), report(0, speed=20)
        assert op.process([fast, slow], ctx()) == [fast]

    def test_drops_events_with_missing_attributes(self):
        op = Filter(attr("missing").gt(1))
        assert op.process([report(0)], ctx()) == []

    def test_filter_on_match_event_binding(self):
        predicate = attr("vid", "a").eq(attr("vid", "b"))
        op = Filter(predicate)
        same = MatchEvent(
            {"a": report(0, vid=1), "b": report(1, vid=1)}, TimeInterval(0, 1)
        )
        different = MatchEvent(
            {"a": report(0, vid=1), "b": report(1, vid=2)}, TimeInterval(0, 1)
        )
        assert op.process([same, different], ctx()) == [same]

    def test_cost_charged_per_event(self):
        op = Filter(const(True))
        op.process([report(0)] * 5, ctx())
        assert op.stats.cost_units == 5 * op.unit_cost
        assert op.stats.events_out == 5


class TestProjection:
    def test_projects_plain_event(self):
        op = Projection(
            TOLL,
            [("vid", attr("vid")), ("sec", attr("sec")), ("toll", const(5))],
        )
        [out] = op.process([report(30, vid=7)], ctx())
        assert out.type_name == "TollNotification"
        assert out.payload == {"vid": 7, "sec": 30, "toll": 5}
        assert out.time == TimeInterval(30, 30)
        assert out.derived_from == (report(30, vid=7),)

    def test_projects_match_event_with_variables(self):
        op = Projection(TOLL, [("vid", attr("vid", "p")), ("sec", attr("sec", "p")), ("toll", const(5))])
        inner = report(10, vid=3)
        match = MatchEvent({"p": inner}, TimeInterval(10, 10))
        [out] = op.process([match], ctx())
        assert out["vid"] == 3
        assert out.derived_from == (inner,)

    def test_projection_preserves_interval_time(self):
        op = Projection(TOLL, [("vid", attr("vid", "a"))])
        match = MatchEvent(
            {"a": report(0), "b": report(40)}, TimeInterval(0, 40)
        )
        [out] = op.process([match], ctx())
        assert out.time == TimeInterval(0, 40)

    def test_unresolvable_item_drops_event(self):
        op = Projection(TOLL, [("vid", attr("vid", "nope"))])
        assert op.process([report(0)], ctx()) == []

    def test_arithmetic_in_items(self):
        op = Projection(TOLL, [("toll", attr("speed") * 2)])
        [out] = op.process([report(0, speed=30)], ctx())
        assert out["toll"] == 60
