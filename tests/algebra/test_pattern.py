"""Tests for the pattern operator P: event matching and SEQ (Section 4.1)."""

import pytest

from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import (
    EventMatch,
    MatchEvent,
    NegatedSpec,
    PatternOperator,
    Sequence,
    binding_of,
    flatten_sequence,
)
from repro.core.windows import ContextWindowStore
from repro.errors import PlanError
from repro.events.event import Event
from repro.events.timebase import TimeInterval
from repro.events.types import EventType

A = EventType.define("A", n="int")
B = EventType.define("B", n="int")
C = EventType.define("C", n="int")


def ev(event_type, t, n=0):
    return Event(event_type, t, {"n": n})


def ctx():
    return ExecutionContext(windows=ContextWindowStore([], "default"), now=0)


class TestEventMatching:
    def test_matches_own_type_only(self):
        op = PatternOperator(EventMatch("A", "x"))
        out = op.process([ev(A, 1), ev(B, 1)], ctx())
        assert len(out) == 1
        assert isinstance(out[0], MatchEvent)
        assert out[0].binding["x"] == ev(A, 1)

    def test_match_event_payload_is_flattened(self):
        op = PatternOperator(EventMatch("A", "x"))
        [match] = op.process([ev(A, 3, n=9)], ctx())
        assert match.payload == {"x.n": 9}

    def test_binding_of_plain_event(self):
        event = ev(A, 0)
        assert binding_of(event) == {"": event}


class TestSequence:
    def test_two_step_sequence(self):
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec)
        assert op.process([ev(A, 1)], ctx()) == []
        [match] = op.process([ev(B, 2)], ctx())
        assert match.binding["a"].timestamp == 1
        assert match.binding["b"].timestamp == 2
        assert match.time == TimeInterval(1, 2)

    def test_strictly_increasing_times_required(self):
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec)
        op.process([ev(A, 5)], ctx())
        # same timestamp must not match (e1.time < e2.time)
        assert op.process([ev(B, 5)], ctx()) == []
        assert len(op.process([ev(B, 6)], ctx())) == 1

    def test_all_combinations_matched(self):
        """SEQ constructs *all* event sequences (skip-till-any-match)."""
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec)
        op.process([ev(A, 1, n=1)], ctx())
        op.process([ev(A, 2, n=2)], ctx())
        out = op.process([ev(B, 3)], ctx())
        assert len(out) == 2
        assert {m.binding["a"]["n"] for m in out} == {1, 2}

    def test_three_step_sequence(self):
        spec = Sequence(
            (EventMatch("A", "a"), EventMatch("B", "b"), EventMatch("C", "c"))
        )
        op = PatternOperator(spec)
        op.process([ev(A, 1)], ctx())
        op.process([ev(B, 2)], ctx())
        assert op.process([ev(C, 3)], ctx()) != []

    def test_same_type_sequence(self):
        spec = Sequence((EventMatch("A", "x"), EventMatch("A", "y")))
        op = PatternOperator(spec)
        op.process([ev(A, 1)], ctx())
        [match] = op.process([ev(A, 2)], ctx())
        assert match.binding["x"].timestamp == 1
        assert match.binding["y"].timestamp == 2

    def test_out_of_scope_types_ignored(self):
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec)
        op.process([ev(A, 1)], ctx())
        assert op.process([ev(C, 2)], ctx()) == []

    def test_sequence_starts_at_timebase_origin(self):
        """A sequence may start at the very beginning of the timebase.

        Regression test for the fresh-partial sentinel: it used to be the
        magic number ``-1.0`` (meaning "no previous event"), which only
        works because the paper's timebase happens to be non-negative.  It
        is now ``float("-inf")`` so the operator itself imposes no lower
        bound on timestamps: an event at t=0 — or at any fractional time
        below the old sentinel's safety margin — must be able to open a
        partial match.
        """
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec)
        assert op.process([ev(A, 0)], ctx()) == []
        [match] = op.process([ev(B, 0.5)], ctx())
        assert match.binding["a"].timestamp == 0
        assert match.binding["b"].timestamp == 0.5
        assert match.time == TimeInterval(0, 0.5)

    def test_fresh_partial_sentinel_is_unbounded(self):
        """The "no previous event" sentinel precedes every legal timestamp.

        Guards against reintroducing a finite sentinel: a partial restored
        from a snapshot keeps whatever ``last_time`` it had, and a fresh
        partial must sort strictly before all of them.
        """
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec)
        op.process([ev(A, 0)], ctx())
        snapshot = op.snapshot_state()
        [partial] = snapshot["partials"]
        assert partial.last_time == 0
        assert float("-inf") < partial.last_time


class TestSpecValidation:
    def test_empty_sequence_rejected(self):
        with pytest.raises(PlanError, match="at least one element"):
            Sequence(())

    def test_all_negated_rejected(self):
        with pytest.raises(PlanError, match="positive"):
            Sequence((NegatedSpec(EventMatch("A", "a")),))

    def test_duplicate_variables_rejected(self):
        with pytest.raises(PlanError, match="duplicate pattern variable"):
            Sequence((EventMatch("A", "x"), EventMatch("B", "x")))

    def test_nested_sequence_flattened(self):
        nested = Sequence(
            (
                EventMatch("A", "a"),
                Sequence((EventMatch("B", "b"), EventMatch("C", "c"))),
            )
        )
        flat = flatten_sequence(nested)
        assert [type(e) for e in flat.elements] == [EventMatch] * 3

    def test_trailing_negation_requires_within(self):
        spec = Sequence(
            (EventMatch("A", "a"), NegatedSpec(EventMatch("B", "b")))
        )
        with pytest.raises(PlanError, match="within"):
            PatternOperator(spec)

    def test_negative_retention_rejected(self):
        with pytest.raises(PlanError, match="retention"):
            PatternOperator(EventMatch("A"), retention=0)


class TestRetention:
    def test_partials_expire_beyond_horizon(self):
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec, retention=10)
        op.process([ev(A, 0)], ctx())
        assert op.state_size() == 1
        # B arrives far later; the stale partial must have been expired
        assert op.process([ev(B, 100)], ctx()) == []
        assert op.state_size() == 0

    def test_partials_survive_within_horizon(self):
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec, retention=100)
        op.process([ev(A, 0)], ctx())
        assert len(op.process([ev(B, 50)], ctx())) == 1

    def test_explicit_expiry(self):
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec, retention=1000)
        op.process([ev(A, 0)], ctx())
        dropped = op.expire_state_before(10)
        assert dropped == 1
        assert op.state_size() == 0


class TestStateManagement:
    def test_reset_state(self):
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec)
        op.process([ev(A, 1)], ctx())
        op.reset_state()
        assert op.state_size() == 0
        assert op.process([ev(B, 2)], ctx()) == []

    def test_snapshot_and_restore(self):
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec)
        op.process([ev(A, 1)], ctx())
        snapshot = op.snapshot_state()
        op.reset_state()
        assert op.process([ev(B, 2)], ctx()) == []
        op.restore_state(snapshot)
        assert len(op.process([ev(B, 3)], ctx())) == 1

    def test_snapshot_is_independent_copy(self):
        spec = Sequence((EventMatch("A", "a"), EventMatch("B", "b")))
        op = PatternOperator(spec)
        op.process([ev(A, 1)], ctx())
        snapshot = op.snapshot_state()
        op.process([ev(A, 2)], ctx())  # mutate after snapshot
        op.restore_state(snapshot)
        assert op.state_size() == 1
