"""Advanced pattern shapes: combined negations, interval-timed inputs."""

import pytest

from repro.algebra.expressions import attr
from repro.algebra.operators import ExecutionContext
from repro.algebra.pattern import (
    EventMatch,
    NegatedSpec,
    PatternOperator,
    Sequence,
)
from repro.core.windows import ContextWindowStore
from repro.events.event import Event
from repro.events.timebase import TimeInterval
from repro.events.types import EventType

A = EventType.define("A", n="int")
B = EventType.define("B", n="int")
C = EventType.define("C", n="int")
D = EventType.define("D", n="int")


def ev(event_type, t, n=0):
    return Event(event_type, t, {"n": n})


def ctx():
    return ExecutionContext(windows=ContextWindowStore([], "d"), now=0)


class TestCombinedNegations:
    def make_op(self):
        """SEQ(NOT A x, B b, NOT C c, D d, NOT A z) WITHIN 10 — leading,
        interleaved and trailing negation in one pattern."""
        spec = Sequence(
            (
                NegatedSpec(EventMatch("A", "x")),
                EventMatch("B", "b"),
                NegatedSpec(EventMatch("C", "c")),
                EventMatch("D", "d"),
                NegatedSpec(EventMatch("A", "z"), within=10),
            )
        )
        return PatternOperator(spec, retention=100)

    def feed(self, op, events, advance_to=None):
        out = []
        for event in events:
            out.extend(op.process([event], ctx()))
        if advance_to is not None:
            out.extend(op.on_time_advance(advance_to, ctx()))
        return out

    def test_clean_match(self):
        op = self.make_op()
        out = self.feed(op, [ev(B, 1), ev(D, 2)], advance_to=20)
        assert len(out) == 1

    def test_leading_negation_blocks(self):
        op = self.make_op()
        out = self.feed(op, [ev(A, 0), ev(B, 1), ev(D, 2)], advance_to=20)
        assert out == []

    def test_interleaved_negation_blocks(self):
        op = self.make_op()
        out = self.feed(
            op, [ev(B, 1), ev(C, 1.5), ev(D, 2)], advance_to=20
        )
        assert out == []

    def test_trailing_negation_blocks(self):
        op = self.make_op()
        out = self.feed(
            op, [ev(B, 1), ev(D, 2), ev(A, 5)], advance_to=20
        )
        assert out == []

    def test_trailing_negated_event_after_deadline_harmless(self):
        op = self.make_op()
        out = self.feed(op, [ev(B, 1), ev(D, 2), ev(A, 13)])
        assert len(out) == 1


class TestIntervalTimedInputs:
    """Complex events carry interval occurrence times; SEQ orders them by
    their *end* points — the interval semantics the paper adopts from [23]
    (a derivation 'occurs' when its last contributing event does)."""

    def make_op(self):
        return PatternOperator(
            Sequence((EventMatch("A", "a"), EventMatch("B", "b"))),
            retention=100,
        )

    def interval_event(self, event_type, start, end, n=0):
        return Event(event_type, TimeInterval(start, end), {"n": n})

    def test_sequence_by_end_times(self):
        op = self.make_op()
        # a spans [0, 10], b spans [2, 12]: ends strictly increase → match
        op.process([self.interval_event(A, 0, 10)], ctx())
        out = op.process([self.interval_event(B, 2, 12)], ctx())
        assert len(out) == 1
        assert out[0].time == TimeInterval(0, 12)

    def test_equal_end_times_do_not_match(self):
        op = self.make_op()
        op.process([self.interval_event(A, 0, 10)], ctx())
        out = op.process([self.interval_event(B, 5, 10)], ctx())
        assert out == []

    def test_match_time_spans_all_contributors(self):
        op = self.make_op()
        op.process([self.interval_event(A, 3, 5)], ctx())
        [match] = op.process([self.interval_event(B, 0, 9)], ctx())
        assert match.time == TimeInterval(0, 9)
