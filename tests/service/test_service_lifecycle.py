"""Regression tests for :class:`EngineService` lifecycle edge cases.

Each test here pins one previously-hanging or masking behavior:

* a feeder crash must resolve every pending control op (no waiter may
  block forever on ``op.done``);
* a feeder crash / erroring ``stop()`` must terminate the ``outputs()``
  iterator and surface the error to the consumer;
* ``__exit__`` must let the in-flight exception win over a stored
  feeder error (chained, not masked);
* ``submit`` racing ``stop`` must either raise or be processed —
  never silently dropped.
"""

import threading
import time

import pytest

from repro.errors import RuntimeEngineError
from repro.language import parse_query
from repro.runtime import CaesarEngine, EngineService
from repro.runtime.service import _Op
from repro.testing import InjectedFaultError, inject_plan_fault

from tests.service.test_service import build_model, reading


def crashing_events():
    """Initiate the alert context, then trip the t=20 fault when the
    t=30 arrival closes the t=20 frontier batch."""
    return [reading(0, 150), reading(20, 160), reading(30, 90)]


def faulty_service(**kwargs):
    engine = CaesarEngine(build_model())
    inject_plan_fault(engine, "alert", at_times={20})
    return EngineService(engine, **kwargs)


def wait_for_crash(service, timeout=10.0):
    deadline = time.monotonic() + timeout
    while service.error is None:
        assert time.monotonic() < deadline, "feeder did not crash"
        time.sleep(0.005)


DEPLOY = "DERIVE Extra(r.value, r.sec) PATTERN SvReading r CONTEXT alert"


class TestFeederCrashResolvesOps:
    def test_op_pending_behind_crash_is_failed(self):
        service = faulty_service(on_emit=lambda e: None)
        # park the feeder so the crashing events and the op provably sit
        # in the queue together before any of them is processed
        entered = threading.Event()
        gate = threading.Event()

        def park():
            entered.set()
            gate.wait()

        service._queue.put(_Op(park))
        assert entered.wait(timeout=5)
        service.extend(crashing_events())

        result = {}

        def deploy():
            try:
                service.deploy_query(
                    parse_query(DEPLOY, name="extra"), timeout=30
                )
            except BaseException as exc:
                result["error"] = exc

        waiter = threading.Thread(target=deploy)
        waiter.start()
        # the op must be queued behind the crash before the gate opens
        for _ in range(500):
            with service._queue.mutex:
                if any(isinstance(i, _Op) for i in service._queue.queue):
                    break
            time.sleep(0.01)
        gate.set()
        waiter.join(timeout=10)
        assert not waiter.is_alive(), "deploy_query hung after feeder crash"
        assert isinstance(result["error"], InjectedFaultError)
        with pytest.raises(InjectedFaultError):
            service.stop()

    def test_ops_after_crash_fail_fast(self):
        service = faulty_service(on_emit=lambda e: None)
        service.extend(crashing_events())
        wait_for_crash(service)
        with pytest.raises(InjectedFaultError):
            service.deploy_query(parse_query(DEPLOY, name="extra"), timeout=30)
        with pytest.raises(InjectedFaultError):
            service.submit(reading(40, 50))
        with pytest.raises(InjectedFaultError):
            service.stop()


class TestCrashTerminatesOutputs:
    def test_consumer_sees_feeder_error(self):
        service = faulty_service()
        result = {}

        def consume():
            try:
                for _ in service.outputs():
                    pass
            except BaseException as exc:
                result["error"] = exc

        consumer = threading.Thread(target=consume)
        consumer.start()
        service.extend(crashing_events())
        wait_for_crash(service)
        consumer.join(timeout=10)
        assert not consumer.is_alive(), "outputs() hung after feeder crash"
        assert isinstance(result["error"], InjectedFaultError)

    def test_erroring_stop_still_terminates_outputs(self):
        service = faulty_service()
        result = {}

        def consume():
            try:
                for _ in service.outputs():
                    pass
            except BaseException as exc:
                result["error"] = exc

        consumer = threading.Thread(target=consume)
        consumer.start()
        service.extend(crashing_events())
        with pytest.raises(InjectedFaultError):
            service.stop()
        consumer.join(timeout=10)
        assert not consumer.is_alive(), "outputs() hung across erroring stop"
        assert isinstance(result["error"], InjectedFaultError)


class TestExitDoesNotMask:
    def test_in_flight_exception_wins_over_feeder_error(self):
        with pytest.raises(ValueError, match="original failure") as excinfo:
            with faulty_service(on_emit=lambda e: None) as service:
                service.extend(crashing_events())
                wait_for_crash(service)
                raise ValueError("original failure")
        # the suppressed feeder error stays inspectable on the chain
        assert isinstance(excinfo.value.__context__, InjectedFaultError)
        # and keeps surfacing from explicit stop() calls
        with pytest.raises(InjectedFaultError):
            service.stop()

    def test_clean_service_passthrough(self):
        with pytest.raises(ValueError, match="original failure"):
            with EngineService(
                CaesarEngine(build_model()), on_emit=lambda e: None
            ) as service:
                service.submit(reading(0, 150))
                raise ValueError("original failure")
        assert service.error is None


class TestSubmitStopRace:
    def test_accepted_submissions_are_never_dropped(self):
        # all events share one timestamp: none can be dead-lettered as
        # late, so every accepted submission must be processed
        service = EngineService(
            CaesarEngine(build_model()), on_emit=lambda e: None
        )
        per_thread = 200
        accepted = [0] * 4

        def produce(slot: int) -> None:
            for _ in range(per_thread):
                try:
                    service.submit(reading(0, 50))
                except RuntimeEngineError:
                    return
                accepted[slot] += 1

        producers = [
            threading.Thread(target=produce, args=(slot,))
            for slot in range(len(accepted))
        ]
        for thread in producers:
            thread.start()
        time.sleep(0.01)  # let the race actually overlap the stop
        report = service.stop()
        for thread in producers:
            thread.join(timeout=10)
            assert not thread.is_alive()
        assert report.events_processed == sum(accepted)
        assert service.dropped_events == 0

    def test_submit_after_stop_raises_not_drops(self):
        service = EngineService(
            CaesarEngine(build_model()), on_emit=lambda e: None
        )
        report = service.stop()
        with pytest.raises(RuntimeEngineError, match="stopped"):
            service.submit(reading(0, 50))
        assert report.events_processed == 0
        assert service.dropped_events == 0
