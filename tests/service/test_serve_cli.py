"""Round-trip smoke tests for the ``repro serve`` command.

A serve process reads line-delimited JSON events on stdin and writes
derived events to stdout as they commit; the emitted set must match a
one-shot ``run()`` over the same stream.
"""

import json
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def event_line(t, value, zone=0):
    return json.dumps({
        "type": "DiffReading",
        "time": t,
        "payload": {"value": value, "sec": t, "zone": zone},
    })


EVENTS = [(0, 5), (10, 15), (20, 12), (30, 19), (40, 2), (50, 17)]


def expected_rows():
    from repro.difftest.scenarios import DIFF_READING, get_scenario
    from repro.events.event import Event
    from repro.events.stream import EventStream
    from repro.runtime import CaesarEngine

    scenario = get_scenario("threshold")
    engine = CaesarEngine(
        scenario.build_model(),
        partition_by=scenario.partition_by,
        retention=scenario.retention,
    )
    report = engine.run(EventStream([
        Event(DIFF_READING, t, {"value": v, "sec": t, "zone": 0})
        for t, v in EVENTS
    ]))
    return [
        {"type": e.type_name, "time": e.timestamp, "payload": e.payload}
        for e in report.outputs
    ]


def serve(stdin_text, *args, timeout=60):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("CAESAR_BACKEND", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--scenario", "threshold",
         *args],
        input=stdin_text,
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )


def emitted(stdout):
    return [json.loads(line) for line in stdout.splitlines() if line]


class TestServeRoundTrip:
    def test_emissions_match_one_shot_run(self):
        lines = [event_line(t, v) for t, v in EVENTS]
        lines.append(json.dumps({"op": "stop"}))
        proc = serve("\n".join(lines) + "\n", "--summary")
        assert proc.returncode == 0, proc.stderr
        assert emitted(proc.stdout) == expected_rows()
        assert "events=" in proc.stderr  # --summary report on stderr

    def test_eof_drains_gracefully(self):
        lines = [event_line(t, v) for t, v in EVENTS]
        proc = serve("\n".join(lines) + "\n")
        assert proc.returncode == 0, proc.stderr
        assert emitted(proc.stdout) == expected_rows()

    def test_online_deploy_round_trip(self):
        lines = [event_line(t, v) for t, v in EVENTS[:3]]
        lines.append(json.dumps({
            "op": "deploy",
            "name": "spike",
            "query": "DERIVE Spike(r.value, r.sec) PATTERN DiffReading r "
                     "WHERE r.value > 18 CONTEXT alert",
        }))
        lines.extend(event_line(t, v) for t, v in EVENTS[3:])
        lines.append(json.dumps({"op": "stop"}))
        proc = serve("\n".join(lines) + "\n")
        assert proc.returncode == 0, proc.stderr
        assert "deployed 'spike' at watermark 20" in proc.stderr
        spikes = [row for row in emitted(proc.stdout) if row["type"] == "Spike"]
        assert [row["time"] for row in spikes] == [30]

    def test_sigterm_drains_and_exits_cleanly(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("CAESAR_BACKEND", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--scenario",
             "threshold"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            for t, v in EVENTS:
                proc.stdin.write(event_line(t, v) + "\n")
            proc.stdin.flush()
            time.sleep(1.0)  # let the feeder commit what it can
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, err
        assert "draining" in err
        # graceful drain: everything submitted before the signal commits
        assert emitted(out) == expected_rows()
