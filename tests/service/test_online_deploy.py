"""Tests for online query/context deployment on a live engine.

The contract: ``deploy_query``/``retire_query``/``deploy_context`` splice
rebuilt plans into live partitions without losing surviving queries'
pattern state, and from its activation watermark onward a deployed query
behaves exactly as on an engine that had it from the start.
"""

import pytest

from repro.core.model import CaesarModel, ModelError
from repro.errors import RuntimeEngineError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime import (
    CaesarEngine,
    EngineSession,
    EngineService,
    SupervisedEngine,
    outputs_to_rows,
)

READING = EventType.define("OdReading", value="int", sec="int", zone="int")


def local_backend():
    """Online deployment requires in-process partition state: honor a
    fleet-wide CAESAR_BACKEND=thread, fall back to serial under process."""
    import os

    name = os.environ.get("CAESAR_BACKEND", "").strip().lower()
    return "thread" if name in ("thread", "threads") else "serial"


def live_engine():
    return CaesarEngine(build_model(), backend=local_backend())


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN OdReading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN OdReading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value, r.sec) PATTERN OdReading r CONTEXT alert",
        name="alarm"))
    # a two-event sequence whose partial matches must survive a splice
    model.add_query(parse_query(
        "DERIVE Pair(a.sec, b.sec) PATTERN SEQ(OdReading a, OdReading b) "
        "WHERE a.value = b.value CONTEXT alert", name="pairs"))
    return model


def spike_query():
    return parse_query(
        "DERIVE Spike(r.value, r.sec) PATTERN OdReading r "
        "WHERE r.value > 160 CONTEXT alert", name="spike")


def reading(t, value, zone=0):
    return Event(READING, t, {"value": value, "sec": t, "zone": zone})


def by_zone(event):
    return event["zone"]


PREFIX = [reading(0, 50), reading(10, 150), reading(20, 170)]
SUFFIX = [reading(30, 170), reading(40, 120), reading(50, 30)]


class TestDeployQuery:
    def test_new_query_fires_from_activation_watermark(self):
        session = EngineSession(live_engine())
        session.feed(PREFIX)
        session.engine.deploy_query(spike_query())
        outputs = session.feed(SUFFIX)
        report = session.close()
        # the t=30 spike (value 170 > 160) is after the watermark: emitted
        assert "Spike" in report.outputs_by_type
        assert [e.timestamp for e in outputs if e.type_name == "Spike"] == [30]

    def test_partial_matches_survive_the_splice(self):
        # a=170@20 (before deploy) pairs with b=170@30 (after): the SEQ
        # plan's partial match must survive the plan swap
        session = EngineSession(live_engine())
        session.feed(PREFIX)
        session.engine.deploy_query(spike_query())
        outputs = session.feed(SUFFIX)
        session.close()
        assert any(e.type_name == "Pair" and e.timestamp == 30
                   for e in outputs)

    def test_duplicate_name_rejected_and_model_unchanged(self):
        engine = live_engine()
        session = EngineSession(engine)
        session.feed(PREFIX)
        with pytest.raises(ModelError):
            engine.deploy_query(parse_query(
                "DERIVE Alarm2(r.sec) PATTERN OdReading r CONTEXT alert",
                name="alarm"))
        # the engine keeps working under the unchanged model
        outputs = session.feed(SUFFIX)
        session.close()
        assert any(e.type_name == "Alarm" for e in outputs)

    def test_requires_local_state_backend(self):
        from repro.runtime import ProcessPoolBackend

        engine = CaesarEngine(
            build_model(),
            partition_by=by_zone,
            backend=ProcessPoolBackend(max_workers=2),
        )
        with pytest.raises(RuntimeEngineError, match="in-process"):
            engine.deploy_query(spike_query())


class TestRetireQuery:
    def test_retired_query_stops_firing_others_keep_state(self):
        session = EngineSession(live_engine())
        session.feed(PREFIX)
        session.engine.retire_query("alarm")
        outputs = session.feed(SUFFIX)
        report = session.close()
        assert not any(e.type_name == "Alarm" for e in outputs)
        # the surviving SEQ query still completes across the splice
        assert any(e.type_name == "Pair" and e.timestamp == 30
                   for e in outputs)
        assert report.outputs_by_type.get("Alarm") == 2  # prefix only

    def test_unknown_name_raises(self):
        engine = live_engine()
        with pytest.raises(ModelError, match="no query named"):
            engine.retire_query("nope")


class TestDeployContext:
    def test_context_then_queries_into_it(self):
        engine = live_engine()
        session = EngineSession(engine)
        session.feed(PREFIX)
        engine.deploy_context("audit")
        engine.deploy_query(parse_query(
            "INITIATE CONTEXT audit PATTERN OdReading r WHERE r.value > 150 "
            "CONTEXT alert", name="start_audit"))
        engine.deploy_query(parse_query(
            "DERIVE Audit(r.sec) PATTERN OdReading r CONTEXT audit",
            name="audit_trail"))
        outputs = session.feed(SUFFIX)
        session.close()
        assert any(e.type_name == "Audit" for e in outputs)

    def test_existing_bits_carry_over(self):
        engine = live_engine()
        session = EngineSession(engine)
        session.feed(PREFIX)  # alert active after value 150/170
        assert session.active_contexts() == ("alert",)
        engine.deploy_context("zz_late")
        assert session.active_contexts() == ("alert",)


class TestSupervisedSplice:
    def test_spliced_plans_stay_guarded(self):
        from repro.runtime.supervisor import _GuardedPlan

        engine = SupervisedEngine(
            build_model(), failure_threshold=1, cooldown=1000,
            backend=local_backend(),
        )
        session = EngineSession(engine)
        session.feed(PREFIX)
        before = engine._partition(None).processing_router.plan_for("alert")
        assert isinstance(before, _GuardedPlan)
        engine.deploy_query(spike_query())
        after = engine._partition(None).processing_router.plan_for("alert")
        # a fresh guard around the fresh plan — but the same breaker, so
        # failure history survives the splice
        assert isinstance(after, _GuardedPlan)
        assert after is not before
        assert after._breaker is before._breaker
        session.feed(SUFFIX)
        report = session.close()
        assert report.outputs_by_type.get("Spike") == 1

    def test_deployment_still_works_supervised_end_to_end(self):
        expected = EngineSession(
            SupervisedEngine(build_model(), backend=local_backend())
        )
        expected.feed(PREFIX)
        expected.engine.deploy_query(spike_query())
        outputs = expected.feed(SUFFIX)
        expected.close()
        assert [e.timestamp for e in outputs if e.type_name == "Spike"] == [30]


class TestServiceDeployment:
    def test_matches_engine_with_query_from_watermark(self):
        # reference: run prefix, checkpoint, restore into an engine whose
        # model has the spike query, run suffix
        from repro.runtime import capture_checkpoint, restore_checkpoint

        base = live_engine()
        base.run(EventStream(PREFIX))
        checkpoint = capture_checkpoint(base)
        upgraded_model = build_model()
        upgraded_model.add_query(spike_query())
        reference = CaesarEngine(upgraded_model, backend=local_backend())
        restore_checkpoint(reference, checkpoint)
        ref_suffix = reference.run(EventStream(SUFFIX))

        service = EngineService(
            live_engine(), on_emit=lambda e: None
        )
        service.extend(PREFIX)
        watermark = service.deploy_query(spike_query())
        assert watermark == 20  # everything submitted before committed
        service.extend(SUFFIX)
        report = service.stop()
        suffix_rows = [
            row for row in outputs_to_rows(report) if row["time"] >= 30
        ]
        assert suffix_rows == outputs_to_rows(ref_suffix)

    def test_retire_through_service(self):
        service = EngineService(
            live_engine(), on_emit=lambda e: None
        )
        service.extend(PREFIX)
        watermark = service.retire_query("alarm")
        assert watermark == 20
        service.extend(SUFFIX)
        report = service.stop()
        assert report.outputs_by_type.get("Alarm") == 2

    def test_failed_op_propagates_and_service_survives(self):
        service = EngineService(
            live_engine(), on_emit=lambda e: None
        )
        service.extend(PREFIX)
        with pytest.raises(ModelError):
            service.retire_query("nope")
        service.extend(SUFFIX)
        report = service.stop()
        assert report.events_processed == len(PREFIX) + len(SUFFIX)
