"""Tests for the streaming service mode (:class:`EngineService`).

The contract: continuously submitting events one at a time — across
thread boundaries, through the bounded ingestion queue — produces exactly
the report a one-shot ``run()`` over the same stream would, and derived
events are emitted as their stream transactions commit.
"""

import threading

import pytest

from repro.core.model import CaesarModel
from repro.errors import RuntimeEngineError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.runtime import (
    CaesarEngine,
    EngineService,
    outputs_to_rows,
    report_to_dict,
)
from repro.runtime.service import _Op

READING = EventType.define("SvReading", value="int", sec="int", zone="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN SvReading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN SvReading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value, r.sec) PATTERN SvReading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value, zone=0):
    return Event(READING, t, {"value": value, "sec": t, "zone": zone})


def by_zone(event):
    return event["zone"]


VALUES = [50, 150, 170, 90, 120, 30, 160, 20]


def stream_events():
    return [
        reading(t * 10, v, zone=t % 2) for t, v in enumerate(VALUES)
    ]


def comparable(report):
    d = report_to_dict(report)
    for key in ("wall_seconds", "throughput", "backend", "transport"):
        d.pop(key)
    return d


class TestContinuousIngestion:
    def test_matches_one_shot_run(self):
        expected = CaesarEngine(
            build_model(), partition_by=by_zone, seconds_per_cost_unit=1e-6
        ).run(EventStream(stream_events()))

        engine = CaesarEngine(
            build_model(), partition_by=by_zone, seconds_per_cost_unit=1e-6
        )
        service = EngineService(engine, on_emit=lambda e: None)
        for event in stream_events():
            service.submit(event)
        report = service.stop()
        assert outputs_to_rows(report) == outputs_to_rows(expected)
        assert comparable(report) == comparable(expected)

    def test_on_emit_receives_outputs_in_commit_order(self):
        emitted = []
        service = EngineService(
            CaesarEngine(build_model()), on_emit=emitted.append
        )
        service.extend(stream_events())
        report = service.stop()
        assert [(e.type_name, e.timestamp) for e in emitted] == [
            (e.type_name, e.timestamp) for e in report.outputs
        ]
        assert service.emitted_events == len(report.outputs)

    def test_outputs_iterator(self):
        service = EngineService(CaesarEngine(build_model()))
        collected = []
        consumer = threading.Thread(
            target=lambda: collected.extend(service.outputs())
        )
        consumer.start()
        service.extend(stream_events())
        report = service.stop()
        consumer.join(timeout=5)
        assert not consumer.is_alive()
        assert sorted((e.type_name, e.timestamp) for e in collected) == sorted(
            (e.type_name, e.timestamp) for e in report.outputs
        )

    def test_outputs_iterator_unavailable_with_callback(self):
        service = EngineService(
            CaesarEngine(build_model()), on_emit=lambda e: None
        )
        with pytest.raises(RuntimeEngineError, match="on_emit"):
            next(service.outputs())
        service.stop()

    def test_frontier_holds_equal_timestamps_together(self):
        # two t=10 events submitted separately must form one transaction,
        # exactly as in a one-shot run
        events = [reading(0, 150), reading(10, 120), reading(10, 130),
                  reading(20, 50)]
        expected = CaesarEngine(build_model()).run(EventStream(events))

        service = EngineService(
            CaesarEngine(build_model()), on_emit=lambda e: None
        )
        for event in events:
            service.submit(event)
        report = service.stop()
        assert report.events_processed == expected.events_processed
        assert report.batches == expected.batches
        assert outputs_to_rows(report) == outputs_to_rows(expected)


class TestLifecycle:
    def test_stop_is_idempotent(self):
        service = EngineService(
            CaesarEngine(build_model()), on_emit=lambda e: None
        )
        service.extend(stream_events())
        first = service.stop()
        assert service.stop() is first
        assert service.close() is first

    def test_submit_after_stop_raises(self):
        service = EngineService(
            CaesarEngine(build_model()), on_emit=lambda e: None
        )
        service.stop()
        with pytest.raises(RuntimeEngineError, match="stopped"):
            service.submit(reading(0, 50))

    def test_context_manager_drains(self):
        expected = CaesarEngine(build_model()).run(
            EventStream(stream_events())
        )
        with EngineService(
            CaesarEngine(build_model()), on_emit=lambda e: None
        ) as service:
            service.extend(stream_events())
        report = service.stop()
        assert outputs_to_rows(report) == outputs_to_rows(expected)

    def test_stop_without_drain_discards_queued_events(self):
        import time

        from repro.runtime.service import _STOP

        service = EngineService(
            CaesarEngine(build_model()), on_emit=lambda e: None
        )
        service.extend(stream_events()[:2])
        # park the feeder on a gate so the later submissions provably sit
        # in the queue when stop(drain=False) empties it
        entered = threading.Event()
        gate = threading.Event()

        def park():
            entered.set()
            gate.wait()

        service._queue.put(_Op(park))
        service.extend(stream_events()[2:])
        assert entered.wait(timeout=5)  # first two events are fed, feeder parked
        stopper = threading.Thread(
            target=service.stop, kwargs={"drain": False}
        )
        stopper.start()
        # open the gate only once the drain loop has finished (the _STOP
        # sentinel is enqueued strictly after it)
        for _ in range(500):
            with service._queue.mutex:
                if any(item is _STOP for item in service._queue.queue):
                    break
            time.sleep(0.01)
        gate.set()
        stopper.join(timeout=5)
        assert not stopper.is_alive()
        report = service.stop()
        assert report.events_processed == 2

    def test_feeder_error_surfaces_on_stop(self):
        from repro.testing import InjectedFaultError, inject_plan_fault

        engine = CaesarEngine(build_model())
        inject_plan_fault(engine, "alert", at_times={20})
        service = EngineService(engine, on_emit=lambda e: None)
        service.extend(stream_events())
        with pytest.raises(InjectedFaultError):
            service.stop()

    def test_backpressure_blocks_then_recovers(self):
        service = EngineService(
            CaesarEngine(build_model()),
            queue_size=1,
            on_emit=lambda e: None,
        )
        for event in stream_events():
            service.submit(event, timeout=5)
        report = service.stop()
        assert report.events_processed == len(VALUES)


class TestServiceObservability:
    def test_gauges_registered_and_updated(self):
        engine = CaesarEngine(build_model())
        service = EngineService(engine, on_emit=lambda e: None)
        service.extend(stream_events())
        service.stop()
        registry = engine.observability.registry
        names = {i.name for i in registry.instruments()}
        assert {
            "caesar_service_queue_depth",
            "caesar_service_watermark",
            "caesar_service_watermark_lag",
            "caesar_service_emit_seconds",
        } <= names
        assert service._queue_gauge.value == 0
        # frontier mode: the last committed transaction is the one before
        # the final (held-open, then flushed) timestamp
        assert service._watermark_gauge.value == 60.0
