"""The ``shed`` differential axis: overload admission is deterministic
and never touches protected derivations.

Two contracts under test, on noise-ballasted streams so the admission
ladder actually sheds (the bare scenario streams consist entirely of
protected types):

1. *Protected-subset equality* — a shed-off and a shed-on run agree
   exactly once derivations whose lineage touches a shed input are
   projected out of both sides.
2. *Decision determinism* — shed runs across the serial, thread, and
   process backends produce byte-identical decision digests: same seed,
   same stream, same per-event decisions everywhere.
"""

import pytest

from repro.difftest import AXES, comparisons_for, get_scenario
from repro.difftest.axes import run_axis, with_overload_noise
from repro.difftest.harness import DIFF_SHED_CONFIG, RunSpec, execute

SEED = 11
SCALE = 0.4


def test_shed_is_a_registered_axis():
    assert "shed" in AXES
    assert len(AXES) == 8


def test_shed_comparison_labels():
    labels = [c.label for c in comparisons_for(get_scenario("threshold"), "shed")]
    assert "off-vs-on-protected" in labels
    assert "shed-serial-vs-thread" in labels


@pytest.mark.parametrize("scenario_name", ["traffic", "pam", "threshold"])
def test_shed_axis_agrees_with_real_shedding(scenario_name):
    """run_axis ballasts the stream, every comparison passes, and the
    shedder actually dropped something (the axis is not vacuous)."""
    scenario = get_scenario(scenario_name)
    results = run_axis(scenario, "shed", seed=SEED, scale=SCALE, shrink=False)
    assert results
    for result in results:
        assert result.passed, (
            f"{scenario_name}/shed/{result.label}: "
            f"{result.divergence.describe()}"
        )
    # prove sheds occurred: rerun one shed side and inspect its counters
    events = with_overload_noise(scenario.make_events(SEED, SCALE), SEED)
    canon = execute(scenario, RunSpec(label="shed:probe", shed=True), events)
    counters = dict(canon.counters)
    assert counters["shed:events"] > 0
    assert counters["shed:protected"] > 0


def test_decision_digest_identical_across_backends():
    scenario = get_scenario("threshold")
    events = with_overload_noise(scenario.make_events(SEED, SCALE), SEED)
    digests = {}
    for backend in ("serial", "thread"):
        canon = execute(
            scenario,
            RunSpec(label=f"shed:{backend}", backend=backend, shed=True),
            events,
        )
        digests[backend] = dict(canon.counters)["shed:digest"]
    assert digests["serial"] == digests["thread"]
    assert digests["serial"]  # non-empty hex digest


def test_noise_ballast_is_deterministic_and_ordered():
    scenario = get_scenario("traffic")
    events = scenario.make_events(SEED, SCALE)
    a = with_overload_noise(events, SEED)
    b = with_overload_noise(events, SEED)
    assert [(e.event_type.name, e.timestamp, dict(e.payload)) for e in a] \
        == [(e.event_type.name, e.timestamp, dict(e.payload)) for e in b]
    assert len(a) == len(events) + 3 * len({e.timestamp for e in events})
    assert all(
        a[i].timestamp <= a[i + 1].timestamp for i in range(len(a) - 1)
    )


def test_diff_shed_config_is_independent_of_the_environment(monkeypatch):
    """The harness pins its own SheddingConfig; CAESAR_SHED must not
    perturb any axis — shed or otherwise — under CI's env leg."""
    monkeypatch.setenv("CAESAR_SHED", "on,fixed_pressure=1.0")
    scenario = get_scenario("traffic")
    events = scenario.make_events(SEED, 0.2)
    baseline = execute(scenario, RunSpec(label="baseline"), events)
    # a fixed_pressure=1.0 engine would shed the stream's cold events and
    # change outputs; the baseline spec passes shedding=False through
    monkeypatch.delenv("CAESAR_SHED")
    clean = execute(scenario, RunSpec(label="baseline"), events)
    assert baseline == clean
    assert DIFF_SHED_CONFIG.record_decisions
