"""The ``service`` differential axis: chunked and continuous ingestion
are byte-identical to one-shot ``run()``, and online deployment matches a
from-scratch engine that had the query from its activation watermark.

The full three-scenario sweep runs in CI's difftest job (``repro diff
--axis service``); this suite pins the axis wiring plus the cheap
threshold scenario end-to-end.
"""

import pytest

from repro.difftest import AXES, comparisons_for, get_scenario
from repro.difftest.axes import run_axis
from repro.difftest.harness import RunSpec, execute

SEED = 13
SCALE = 0.4


def test_service_is_a_registered_axis():
    assert "service" in AXES


def test_service_comparison_labels():
    labels = [
        c.label for c in comparisons_for(get_scenario("threshold"), "service")
    ]
    assert labels == [
        "run-vs-session",
        "run-vs-service",
        "deploy-online-vs-reference",
        "deploy-service-vs-reference",
    ]


def test_every_scenario_carries_a_deploy_query():
    for name in ("traffic", "pam", "threshold"):
        scenario = get_scenario(name)
        assert scenario.deploy_query is not None
        query = scenario.deploy_query()
        assert query.contexts  # deploys into a real context


def test_runspec_validation():
    with pytest.raises(ValueError):
        RunSpec(label="bad", ingest="carrier-pigeon")
    with pytest.raises(ValueError):
        RunSpec(label="bad", deploy="online")  # one-shot cannot deploy
    with pytest.raises(ValueError):
        RunSpec(label="bad", ingest="session", deploy_at=1.5)


def test_threshold_axis_passes():
    scenario = get_scenario("threshold")
    results = run_axis(scenario, "service", seed=SEED, scale=SCALE,
                       shrink=False)
    assert len(results) == 4
    for result in results:
        assert result.passed, (
            f"threshold/service/{result.label}: "
            f"{result.divergence.describe()}"
        )


def test_session_and_service_projections_match_run_exactly():
    scenario = get_scenario("threshold")
    events = scenario.make_events(SEED, SCALE)
    baseline = execute(scenario, RunSpec(label="baseline"), events)
    session = execute(
        scenario, RunSpec(label="session", ingest="session"), events
    )
    service = execute(
        scenario, RunSpec(label="service", ingest="service"), events
    )
    assert session == baseline
    assert service == baseline


def test_axis_detects_injected_divergence():
    from repro.difftest.axes import run_comparison

    scenario = get_scenario("threshold")
    events = scenario.make_events(SEED, SCALE)
    comparison = comparisons_for(scenario, "service")[0]
    result = run_comparison(
        scenario, comparison, events,
        shrink=False, inject_divergence=True,
    )
    assert not result.passed
