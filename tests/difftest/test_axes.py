"""All six differential axes agree on every shipped scenario.

These are the headline acceptance checks of the harness: the same
generated workload run through pairs of configurations that promise
equivalence — optimizer rule sets, context-aware vs baseline, execution
backends, checkpoint/restore-mid-stream, jittered arrival through the
reorder buffer, load shedding off vs on — produces identical canonical
results.  (The shed axis is exercised on noise-ballasted streams in
``test_shed_axis.py``; here it runs on the bare scenario streams, whose
types are all protected — the degenerate everything-admitted case.)
"""

import pytest

from repro.difftest import (
    AXES,
    comparisons_for,
    get_scenario,
    run_comparison,
)

SCALE = 0.4
SEED = 11


@pytest.fixture(scope="module")
def streams():
    """One generated stream per scenario, shared across axis tests."""
    cache = {}
    for name in ("traffic", "pam", "threshold"):
        scenario = get_scenario(name)
        cache[name] = (scenario, scenario.make_events(SEED, SCALE))
    return cache


@pytest.mark.parametrize("scenario_name", ["traffic", "pam", "threshold"])
@pytest.mark.parametrize("axis", AXES)
def test_axis_agrees(streams, scenario_name, axis):
    scenario, events = streams[scenario_name]
    assert events, "scenario generated an empty stream"
    for comparison in comparisons_for(scenario, axis):
        result = run_comparison(scenario, comparison, events, shrink=False)
        assert result.passed, (
            f"{scenario_name}/{axis}/{comparison.label}: "
            f"{result.divergence.describe()}"
        )


def test_every_axis_has_comparisons():
    scenario = get_scenario("threshold")
    for axis in AXES:
        assert comparisons_for(scenario, axis)


def test_sharing_comparison_requires_window_schedule(streams):
    scenario, _ = streams["traffic"]
    labels = [c.label for c in comparisons_for(scenario, "optimizer")]
    assert "nonshared-vs-shared" not in labels
    threshold, _ = streams["threshold"]
    labels = [c.label for c in comparisons_for(threshold, "optimizer")]
    assert "nonshared-vs-shared" in labels


def test_unknown_axis_rejected():
    with pytest.raises(ValueError, match="unknown axis"):
        comparisons_for(get_scenario("threshold"), "quantum")


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        get_scenario("nope")
