"""Tier-1 regression: restore-mid-stream equals straight-through, exactly.

An 8-partition Linear Road run is split at a stream-transaction boundary;
the prefix runs on one engine, a checkpoint is captured, restored into a
fresh engine, and the suffix replayed there.  The concatenated outputs
must be *byte-identical* to the uninterrupted run — same events in the
same order, same windows, same deterministic counters — under both the
serial and the thread-sharded backend (the cross-backend determinism
contract extends to recovery).
"""

import pytest

from repro.api import EngineConfig, create_engine
from repro.difftest.harness import _transaction_boundary
from repro.events.stream import EventStream
from repro.linearroad.generator import (
    LinearRoadConfig,
    generate_stream,
    paper_timeline_schedules,
)
from repro.linearroad.queries import build_traffic_model, segment_partitioner
from repro.runtime.checkpoint import capture_checkpoint, restore_checkpoint

SEGMENTS = 8


@pytest.fixture(scope="module")
def events():
    config = paper_timeline_schedules(
        LinearRoadConfig(
            num_roads=1,
            segments_per_road=SEGMENTS,
            duration_minutes=4,
            seed=13,
        )
    )
    stream = list(generate_stream(config))
    # the run must actually span 8 partitions for the test to mean anything
    partitions = {segment_partitioner(e) for e in stream}
    assert len(partitions) >= SEGMENTS
    return stream


def run_config(backend):
    return EngineConfig(
        backend=backend,
        partition_by=segment_partitioner,
        retention=120,
    )


def event_bytes(outputs):
    """The exact, order-sensitive identity of an output sequence."""
    return [
        (e.start_time, e.timestamp, e.type_name, sorted(e.payload.items()))
        for e in outputs
    ]


def window_bytes(report):
    return {
        repr(partition): [
            (w.context_name, w.start, w.end) for w in windows
        ]
        for partition, windows in report.windows_by_partition.items()
    }


@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_restore_mid_stream_is_byte_identical(events, backend):
    straight = create_engine(build_traffic_model(), run_config(backend))
    straight_report = straight.run(EventStream(events))
    assert straight_report.outputs, "run derived nothing; test is vacuous"

    cut = _transaction_boundary(events, 0.5)
    first = create_engine(build_traffic_model(), run_config(backend))
    prefix_report = first.run(EventStream(events[:cut]))
    checkpoint = capture_checkpoint(first)

    second = create_engine(build_traffic_model(), run_config(backend))
    restore_checkpoint(second, checkpoint)
    suffix_report = second.run(EventStream(events[cut:]))

    resumed_outputs = prefix_report.outputs + suffix_report.outputs
    assert event_bytes(resumed_outputs) == event_bytes(
        straight_report.outputs
    )
    assert window_bytes(suffix_report) == window_bytes(straight_report)
    assert (
        prefix_report.events_processed + suffix_report.events_processed
        == straight_report.events_processed
    )
    by_type = dict(prefix_report.outputs_by_type)
    for name, count in suffix_report.outputs_by_type.items():
        by_type[name] = by_type.get(name, 0) + count
    assert by_type == straight_report.outputs_by_type


@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_resume_via_env_selected_backend(events, backend, monkeypatch):
    """The same contract holds when the backend comes from CAESAR_BACKEND
    (the deployment path) rather than an explicit config."""
    monkeypatch.setenv("CAESAR_BACKEND", backend)
    straight = create_engine(build_traffic_model(), run_config(None))
    straight_report = straight.run(EventStream(events))

    cut = _transaction_boundary(events, 0.3)
    first = create_engine(build_traffic_model(), run_config(None))
    prefix_report = first.run(EventStream(events[:cut]))
    second = create_engine(build_traffic_model(), run_config(None))
    restore_checkpoint(second, capture_checkpoint(first))
    suffix_report = second.run(EventStream(events[cut:]))

    assert event_bytes(prefix_report.outputs + suffix_report.outputs) == (
        event_bytes(straight_report.outputs)
    )
    assert window_bytes(suffix_report) == window_bytes(straight_report)
