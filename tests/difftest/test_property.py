"""Hypothesis property suite over the differential harness.

Instead of the fixed seeded streams of ``test_axes``, these properties let
hypothesis pick the stream — arbitrary timestamps (including simultaneous
and negative ones), values crossing every threshold, zone gaps — and
assert the equivalences hold on *all* of them.  The per-rule optimizer
properties check each rewrite in isolation, which the composed pipelines
cannot: a rule that is only correct when a later rule repairs it would
pass "none vs full" and fail here.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.difftest import RunSpec, execute, first_divergence, get_scenario
from repro.difftest.scenarios import DIFF_READING
from repro.events.event import Event
from repro.optimizer.apply import OptimizationRules

SCENARIO = get_scenario("threshold")

SINGLE_RULES = [
    OptimizationRules(pushdown=True, filter_swap=False,
                      filter_reorder=False, filter_merge=False),
    OptimizationRules(pushdown=False, filter_swap=True,
                      filter_reorder=False, filter_merge=False),
    OptimizationRules(pushdown=False, filter_swap=False,
                      filter_reorder=True, filter_merge=False),
    OptimizationRules(pushdown=False, filter_swap=False,
                      filter_reorder=False, filter_merge=True),
]


@st.composite
def streams(draw):
    """Short threshold-model streams with adversarial shapes."""
    times = draw(st.lists(
        st.integers(min_value=-20, max_value=120),
        min_size=1, max_size=25,
    ))
    events = []
    for t in sorted(times):
        value = draw(st.integers(min_value=0, max_value=20))
        zone = draw(st.integers(min_value=0, max_value=1))
        events.append(
            Event(DIFF_READING, t, {"value": value, "sec": t, "zone": zone})
        )
    return events


def assert_agree(left: RunSpec, right: RunSpec, events):
    divergence = first_divergence(
        execute(SCENARIO, left, events), execute(SCENARIO, right, events)
    )
    assert divergence is None, divergence.describe()


class TestOptimizerRules:
    @given(streams())
    @settings(max_examples=30, deadline=None)
    def test_each_rule_alone_is_result_preserving(self, events):
        base = RunSpec(label="none", optimize="none")
        for rules in SINGLE_RULES:
            assert_agree(
                base, RunSpec(label=repr(rules), optimize=rules), events
            )

    @given(streams())
    @settings(max_examples=30, deadline=None)
    def test_full_pipeline_is_result_preserving(self, events):
        assert_agree(
            RunSpec(label="none", optimize="none"),
            RunSpec(label="full", optimize="full"),
            events,
        )


class TestContextEquivalence:
    @given(streams())
    @settings(max_examples=30, deadline=None)
    def test_aware_matches_independent(self, events):
        assert_agree(
            RunSpec(label="aware"),
            RunSpec(label="independent", context_aware=False),
            events,
        )


class TestBackendEquivalence:
    @given(streams())
    @settings(max_examples=20, deadline=None)
    def test_thread_matches_serial(self, events):
        assert_agree(
            RunSpec(label="serial"),
            RunSpec(label="thread", backend="thread"),
            events,
        )


class TestCheckpointEquivalence:
    @given(streams(), st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_restore_mid_stream_matches_straight(self, events, fraction):
        if len(events) < 2:
            return
        assert_agree(
            RunSpec(label="straight"),
            RunSpec(label="restored", checkpoint_at=fraction),
            events,
        )


class TestReorderEquivalence:
    @given(streams(), st.integers(min_value=0, max_value=40),
           st.integers(min_value=0, max_value=999))
    @settings(max_examples=30, deadline=None)
    def test_jittered_matches_inorder(self, events, jitter, seed):
        assert_agree(
            RunSpec(label="inorder"),
            RunSpec(label="jittered", jitter=jitter, jitter_seed=seed),
            events,
        )
