"""The harness itself: divergence detection, shrinking, CLI exit codes.

A differential harness that cannot catch a planted bug proves nothing, so
the central tests here *inject* a divergence (drop one event from one
side) and assert it is detected, reported with a first-divergence element,
ddmin-minimized, and surfaced as a non-zero CLI exit.
"""

import pytest

from repro.cli import main
from repro.difftest import (
    RunSpec,
    canonical_event,
    comparisons_for,
    ddmin,
    execute,
    first_divergence,
    get_scenario,
    run_comparison,
    run_pair,
)
from repro.difftest.canonical import CanonicalResult, Divergence
from repro.difftest.harness import prepare_events
from repro.events.event import Event
from repro.events.types import EventType

PING = EventType.define("DiffPing", n="int")


def ping(t, n=0):
    return Event(PING, t, {"n": n})


class TestInjectedDivergence:
    """The harness catches, reports and minimizes a planted disagreement."""

    @pytest.fixture(scope="class")
    def result(self):
        scenario = get_scenario("threshold")
        events = scenario.make_events(5, 0.3)
        comparison = comparisons_for(scenario, "context")[0]
        return run_comparison(
            scenario, comparison, events, inject_divergence=True
        ), len(events)

    def test_divergence_detected(self, result):
        outcome, _ = result
        assert not outcome.passed
        assert isinstance(outcome.divergence, Divergence)
        assert outcome.divergence.component in (
            "outputs", "windows", "counters",
        )

    def test_stream_minimized(self, result):
        outcome, original = result
        assert outcome.minimized is not None
        assert 1 <= len(outcome.minimized) < original
        # a single dropped event reproduces from any non-empty stream,
        # so ddmin must reach the 1-minimal reproduction
        assert len(outcome.minimized) == 1

    def test_minimized_stream_still_diverges(self, result):
        outcome, _ = result
        scenario = get_scenario("threshold")
        comparison = comparisons_for(scenario, "context")[0]
        import dataclasses
        right = dataclasses.replace(
            comparison.right, drop_index=outcome.events_run // 2
        )
        assert run_pair(
            scenario, comparison.left, right, list(outcome.minimized)
        ) is not None


class TestCli:
    def test_agreeing_run_exits_zero(self, capsys):
        code = main([
            "diff", "--scenario", "threshold", "--axis", "reorder",
            "--scale", "0.2", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 diverged -> agreed" in out

    def test_injected_divergence_exits_nonzero_with_minimized_stream(
        self, capsys
    ):
        code = main([
            "diff", "--scenario", "threshold", "--axis", "context",
            "--scale", "0.2", "--seed", "3", "--inject-divergence",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "DIVERGED" in out
        assert "first divergence in" in out
        assert "minimized failing stream (1 of" in out

    def test_no_shrink_skips_minimization(self, capsys):
        code = main([
            "diff", "--scenario", "threshold", "--axis", "context",
            "--scale", "0.2", "--seed", "3", "--inject-divergence",
            "--no-shrink",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "minimized failing stream" not in out


class TestRunSpecValidation:
    def test_bad_optimize_name(self):
        with pytest.raises(ValueError, match="unknown optimize spec"):
            RunSpec(label="x", optimize="turbo")

    def test_bad_workload(self):
        with pytest.raises(ValueError, match="workload"):
            RunSpec(label="x", workload="grouped")

    def test_bad_checkpoint_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            RunSpec(label="x", checkpoint_at=1.5)

    def test_negative_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            RunSpec(label="x", jitter=-1)


class TestPrepareEvents:
    def test_drop_removes_exactly_one(self):
        events = [ping(t) for t in range(10)]
        spec = RunSpec(label="x", drop_index=4)
        prepared = prepare_events(spec, events)
        assert len(prepared) == 9
        assert [e.timestamp for e in prepared] == [
            0, 1, 2, 3, 5, 6, 7, 8, 9,
        ]

    def test_jitter_recovers_original_order(self):
        events = [ping(t, n=t) for t in range(0, 100, 3)]
        spec = RunSpec(label="x", jitter=12, jitter_seed=9)
        prepared = prepare_events(spec, events)
        assert [e.event_id for e in prepared] == [
            e.event_id for e in events
        ]

    def test_zero_jitter_is_identity(self):
        events = [ping(t) for t in range(5)]
        assert prepare_events(RunSpec(label="x"), events) == events


class TestCanonical:
    def test_canonical_event_ignores_identity(self):
        a, b = ping(4, n=2), ping(4, n=2)
        assert a.event_id != b.event_id
        assert canonical_event(a) == canonical_event(b)

    def test_first_divergence_none_on_equal(self):
        result = CanonicalResult(outputs=(1, 2), windows=(), counters=())
        assert first_divergence(result, result) is None

    def test_first_divergence_reports_component_and_index(self):
        left = CanonicalResult(outputs=(1, 2), windows=(), counters=())
        right = CanonicalResult(outputs=(1, 3), windows=(), counters=())
        found = first_divergence(left, right)
        assert (found.component, found.index) == ("outputs", 1)
        assert (found.left, found.right) == (2, 3)

    def test_first_divergence_on_length_mismatch(self):
        left = CanonicalResult(outputs=(1,), windows=(), counters=())
        right = CanonicalResult(outputs=(1, 9), windows=(), counters=())
        found = first_divergence(left, right)
        assert (found.component, found.index) == ("outputs", 1)
        assert (found.left, found.right) == (None, 9)

    def test_outputs_checked_before_counters(self):
        left = CanonicalResult(
            outputs=(1,), windows=(), counters=(("n", 1),)
        )
        right = CanonicalResult(
            outputs=(2,), windows=(), counters=(("n", 2),)
        )
        assert first_divergence(left, right).component == "outputs"


class TestDdmin:
    def test_minimizes_to_single_culprit(self):
        items = list(range(40))
        shrunk = ddmin(items, lambda subset: 23 in subset)
        assert shrunk == [23]

    def test_minimizes_interacting_pair(self):
        items = list(range(30))
        shrunk = ddmin(
            items, lambda subset: 4 in subset and 27 in subset
        )
        assert shrunk == [4, 27]

    def test_preserves_relative_order(self):
        items = [5, 1, 9, 1, 7]
        shrunk = ddmin(items, lambda subset: subset.count(1) >= 2)
        assert shrunk == [1, 1]

    def test_rejects_passing_input(self):
        with pytest.raises(ValueError, match="failing input"):
            ddmin([1, 2, 3], lambda subset: False)

    def test_test_budget_returns_failing_reduction(self):
        items = list(range(64))
        shrunk = ddmin(items, lambda s: 10 in s, max_tests=5)
        assert 10 in shrunk


class TestExecuteDeterminism:
    def test_same_spec_same_result(self):
        scenario = get_scenario("threshold")
        events = scenario.make_events(2, 0.2)
        spec = RunSpec(label="x", optimize="full")
        assert execute(scenario, spec, events) == execute(
            scenario, spec, events
        )

    def test_workload_requires_schedule(self):
        from repro.difftest.harness import HarnessError

        scenario = get_scenario("traffic")
        with pytest.raises(HarnessError, match="window schedule"):
            execute(
                scenario,
                RunSpec(label="x", workload="shared"),
                scenario.make_events(2, 0.2)[:10],
            )
