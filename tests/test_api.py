"""Tests for the unified construction API and engine-surface consistency.

Covers the frozen config objects and ``create_engine`` dispatch, the
removed ``run()`` keyword aliases, report schema versioning, and the
strict backend resolution errors.
"""

import dataclasses

import pytest

from repro import EngineConfig, SupervisionConfig, create_engine
from repro.core.model import CaesarModel
from repro.core.windows import WindowSpec
from repro.errors import RuntimeEngineError, UnknownBackendError
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query
from repro.optimizer.sharing import build_shared_workload
from repro.runtime import (
    CaesarEngine,
    REPORT_SCHEMA_VERSION,
    ScheduledWorkloadEngine,
    SupervisedEngine,
    ThreadPoolBackend,
    report_to_dict,
    resolve_backend,
)
from repro.runtime.backend import BACKEND_ENV_VAR
from repro.runtime.recovery import RecoveryManager

READING = EventType.define("ApiReading", value="int", sec="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN ApiReading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN ApiReading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value) PATTERN ApiReading r CONTEXT alert",
        name="alarm"))
    return model


def build_workload():
    query = parse_query(
        "DERIVE Alarm(r.value) PATTERN ApiReading r WHERE r.value > 0",
        name="q",
    )
    specs = [WindowSpec("w", start=0, end=100, queries=(query,))]
    return build_shared_workload(specs)


def small_stream():
    values = [50, 150, 150, 50, 150, 50]
    return EventStream(
        Event(READING, t * 10, {"value": v, "sec": t})
        for t, v in enumerate(values)
    )


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.context_aware is True
        assert config.optimize is True
        assert config.supervision is None
        assert config.supervision_config() is None

    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.backend = "thread"

    def test_supervision_normalisation(self):
        assert EngineConfig(supervision=True).supervision_config() == (
            SupervisionConfig()
        )
        assert EngineConfig(supervision=False).supervision_config() is None
        explicit = SupervisionConfig(failure_threshold=9)
        assert (
            EngineConfig(supervision=explicit).supervision_config()
            is explicit
        )

    def test_recovery_implies_supervision(self):
        config = EngineConfig(recovery=RecoveryManager(interval=50))
        assert config.supervision_config() == SupervisionConfig()

    def test_invalid_supervision_type(self):
        with pytest.raises(TypeError, match="supervision must be"):
            EngineConfig(supervision="yes").supervision_config()


class TestCreateEngine:
    def test_defaults_to_plain_engine(self):
        engine = create_engine(build_model())
        assert type(engine) is CaesarEngine

    def test_supervision_selects_supervised_engine(self):
        engine = create_engine(
            build_model(), EngineConfig(supervision=True)
        )
        assert isinstance(engine, SupervisedEngine)
        engine = create_engine(
            build_model(),
            EngineConfig(supervision=SupervisionConfig(failure_threshold=7)),
        )
        assert engine.failure_threshold == 7

    def test_overrides_replace_config_fields(self):
        base = EngineConfig(retention=100)
        engine = create_engine(build_model(), base, retention=50)
        assert engine.retention == 50
        assert base.retention == 100  # base config untouched

    def test_backend_spec_passthrough(self):
        backend = ThreadPoolBackend(max_workers=2)
        engine = create_engine(build_model(), EngineConfig(backend=backend))
        assert engine.backend is backend

    def test_rejects_non_config(self):
        with pytest.raises(TypeError, match="must be an EngineConfig"):
            create_engine(build_model(), {"backend": "serial"})

    def test_shared_workload_builds_scheduled_engine(self):
        engine = create_engine(build_workload())
        assert isinstance(engine, ScheduledWorkloadEngine)

    def test_shared_workload_rejects_supervision(self):
        with pytest.raises(TypeError, match="does not apply"):
            create_engine(build_workload(), EngineConfig(supervision=True))

    def test_created_engine_runs(self):
        engine = create_engine(build_model())
        report = engine.run(small_stream())
        assert report.events_processed == 6


class TestRunKwargRemoval:
    def test_removed_kwarg_raises_naming_replacement(self):
        engine = create_engine(build_model())
        with pytest.raises(TypeError, match="use 'track_outputs'"):
            engine.run(small_stream(), collect_outputs=False)

    def test_shared_workload_engine_removed_kwarg(self):
        engine = create_engine(build_workload())
        with pytest.raises(TypeError, match="use 'track_outputs'"):
            engine.run(small_stream(), keep_outputs=False)

    def test_unknown_kwarg_raises_type_error(self):
        engine = create_engine(build_model())
        with pytest.raises(TypeError, match="unexpected keyword"):
            engine.run(small_stream(), bogus=True)

    def test_error_names_the_engine_class(self):
        engine = create_engine(build_model())
        with pytest.raises(TypeError, match="CaesarEngine"):
            engine.run(small_stream(), keep_outputs=True)


class TestCreateEngineOverrideValidation:
    def test_unknown_override_lists_valid_fields(self):
        with pytest.raises(TypeError, match="retention"):
            create_engine(build_model(), EngineConfig(), retenshun=50)

    def test_unknown_override_names_the_offender(self):
        with pytest.raises(TypeError, match="bogus_knob"):
            create_engine(build_model(), bogus_knob=1)


class TestEngineConfigTyping:
    def test_recovery_true_builds_default_manager(self):
        manager = EngineConfig(recovery=True).recovery_manager()
        assert isinstance(manager, RecoveryManager)
        assert manager.interval == EngineConfig.DEFAULT_RECOVERY_INTERVAL

    def test_recovery_false_and_none_disable(self):
        assert EngineConfig(recovery=False).recovery_manager() is None
        assert EngineConfig().recovery_manager() is None
        assert EngineConfig(recovery=False).supervision_config() is None

    def test_recovery_explicit_instance_passes_through(self):
        manager = RecoveryManager(interval=25)
        assert EngineConfig(recovery=manager).recovery_manager() is manager

    def test_recovery_invalid_type(self):
        with pytest.raises(TypeError, match="recovery must be"):
            EngineConfig(recovery="often").recovery_manager()

    def test_aggregation_mode_validated_by_engine(self):
        with pytest.raises(RuntimeEngineError, match="aggregation mode"):
            create_engine(build_model(), aggregation="sideways")


class TestReportSchema:
    def test_schema_version_in_dict(self):
        engine = create_engine(build_model())
        report = engine.run(small_stream())
        d = report_to_dict(report)
        assert d["schema_version"] == REPORT_SCHEMA_VERSION
        assert REPORT_SCHEMA_VERSION >= 2


class TestBackendResolutionErrors:
    def test_unknown_spec_lists_valid_names(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            resolve_backend("quantum")
        message = str(excinfo.value)
        assert "quantum" in message
        assert "backend spec" in message
        for name in ("serial", "thread", "process"):
            assert name in message

    def test_unknown_env_var_names_the_source(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(UnknownBackendError, match=BACKEND_ENV_VAR):
            resolve_backend(None)

    def test_error_is_both_runtime_and_value_error(self):
        with pytest.raises(ValueError):
            resolve_backend("quantum")
        with pytest.raises(RuntimeEngineError):
            resolve_backend("quantum")
