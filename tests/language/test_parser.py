"""Tests for the recursive-descent parser (grammar of Fig. 4)."""

import pytest

from repro.algebra.expressions import And, AttrRef, BinaryOp, Constant, Not, Or
from repro.errors import ParseError
from repro.language.ast import (
    EventPatternNode,
    RetrievalQueryNode,
    SeqPatternNode,
    WindowQueryNode,
)
from repro.language.parser import parse


class TestWindowQueries:
    def test_initiate(self):
        node = parse("INITIATE CONTEXT accident PATTERN Accident")
        assert isinstance(node, WindowQueryNode)
        assert node.action == "INITIATE"
        assert node.target_context == "accident"
        assert node.pattern == EventPatternNode("Accident")

    def test_switch_with_where_and_context(self):
        node = parse(
            "SWITCH CONTEXT clear PATTERN SegmentStats s "
            "WHERE s.avg_speed >= 40 CONTEXT congestion"
        )
        assert node.action == "SWITCH"
        assert node.target_context == "clear"
        assert node.contexts == ("congestion",)
        assert isinstance(node.where, BinaryOp)

    def test_terminate(self):
        node = parse("TERMINATE CONTEXT accident PATTERN Cleared CONTEXT accident")
        assert node.action == "TERMINATE"

    def test_multi_context_clause(self):
        node = parse(
            "INITIATE CONTEXT accident PATTERN Accident CONTEXT clear, congestion"
        )
        assert node.contexts == ("clear", "congestion")


class TestRetrievalQueries:
    def test_derive_with_args(self):
        node = parse(
            "DERIVE TollNotification(p.vid, p.sec, 5) "
            "PATTERN NewTravelingCar p CONTEXT congestion"
        )
        assert isinstance(node, RetrievalQueryNode)
        assert node.derive.type_name == "TollNotification"
        assert node.derive.args == (
            AttrRef("p", "vid"), AttrRef("p", "sec"), Constant(5),
        )
        assert node.pattern == EventPatternNode("NewTravelingCar", "p")

    def test_derive_without_args(self):
        node = parse("DERIVE Ping PATTERN Tick t")
        assert node.derive.args == ()

    def test_derive_empty_parens(self):
        node = parse("DERIVE Ping() PATTERN Tick t")
        assert node.derive.args == ()

    def test_within_clause(self):
        node = parse(
            "DERIVE X(a.n) PATTERN SEQ(A a, NOT B b) WHERE b.n = a.n WITHIN 15"
        )
        assert node.within == 15

    def test_fractional_within(self):
        node = parse("DERIVE X(a.n) PATTERN A a WITHIN 2.5")
        assert node.within == 2.5


class TestPatterns:
    def test_seq_with_negation(self):
        node = parse(
            "DERIVE X PATTERN SEQ(NOT PositionReport p1, PositionReport p2)"
        )
        pattern = node.pattern
        assert isinstance(pattern, SeqPatternNode)
        assert pattern.elements[0] == EventPatternNode(
            "PositionReport", "p1", negated=True
        )
        assert pattern.elements[1] == EventPatternNode("PositionReport", "p2")

    def test_nested_seq(self):
        node = parse("DERIVE X PATTERN SEQ(A a, SEQ(B b, C c))")
        inner = node.pattern.elements[1]
        assert isinstance(inner, SeqPatternNode)

    def test_pattern_variable_optional(self):
        node = parse("DERIVE X PATTERN Accident")
        assert node.pattern.var == ""


class TestExpressions:
    def expr(self, source):
        return parse(f"DERIVE X PATTERN A a WHERE {source}").where

    def test_precedence_and_over_or(self):
        expr = self.expr("a.x = 1 OR a.y = 2 AND a.z = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.right, And)

    def test_precedence_arithmetic_over_comparison(self):
        expr = self.expr("a.x + 30 = a.y")
        assert isinstance(expr, BinaryOp)
        assert expr.op == "="
        assert isinstance(expr.left, BinaryOp)
        assert expr.left.op == "+"

    def test_precedence_mul_over_add(self):
        expr = self.expr("a.x + 2 * 3 = 7")
        assert expr.left.right.op == "*"

    def test_parentheses(self):
        expr = self.expr("(a.x + 2) * 3 = 7")
        assert expr.left.op == "*"
        assert expr.left.left.op == "+"

    def test_not_expression(self):
        expr = self.expr("NOT a.x = 1")
        assert isinstance(expr, Not)

    def test_string_literal(self):
        expr = self.expr("a.lane != 'exit'")
        assert expr.right == Constant("exit")

    def test_unqualified_attribute(self):
        expr = self.expr("speed > 40")
        assert expr.left == AttrRef("", "speed")

    def test_unicode_operators(self):
        expr = self.expr("a.x ≠ 1 AND a.y ≥ 2")
        assert expr.left.op == "!="
        assert expr.right.op == ">="


class TestParseErrors:
    @pytest.mark.parametrize(
        "source,message",
        [
            ("", "starts with"),
            ("SELECT x FROM y", "starts with"),
            ("DERIVE X", "expected 'PATTERN'"),
            ("DERIVE X PATTERN", "expected an expression|expected"),
            ("INITIATE accident PATTERN A", "expected 'CONTEXT'"),
            ("DERIVE X PATTERN A a WHERE", "expected an expression"),
            ("DERIVE X PATTERN SEQ(A a", r"expected '\)'"),
            ("DERIVE X PATTERN A a trailing", "unexpected input"),
            ("DERIVE X(p.vid PATTERN A a", r"expected '\)'"),
        ],
    )
    def test_error_cases(self, source, message):
        with pytest.raises(ParseError, match=message):
            parse(source)

    def test_error_reports_location(self):
        with pytest.raises(ParseError, match=r"line 1, column"):
            parse("DERIVE X PATTERN A a WHERE +")


class TestAggregateClauses:
    def test_count_star(self):
        from repro.language.ast import AggregateCallNode

        node = parse("DERIVE Out(COUNT(*)) PATTERN SEQ(A a, B b)")
        (arg,) = node.derive.args
        assert isinstance(arg, AggregateCallNode)
        assert arg.func == "count"

    def test_var_qualified_target(self):
        from repro.language.ast import AggregateCallNode

        node = parse("DERIVE Out(SUM(a.speed), MIN(b.lane)) PATTERN SEQ(A a, B b)")
        first, second = node.derive.args
        assert isinstance(first, AggregateCallNode)
        assert (first.func, first.var, first.attribute) == ("sum", "a", "speed")
        assert (second.func, second.var, second.attribute) == ("min", "b", "lane")

    def test_aggregate_names_are_not_keywords(self):
        # COUNT without '(' is an ordinary attribute reference
        node = parse("DERIVE Out(a.count) PATTERN A a")
        (arg,) = node.derive.args
        assert isinstance(arg, AttrRef)

    @pytest.mark.parametrize(
        "source,message",
        [
            ("DERIVE Out(SUM(*)) PATTERN A a", r"only COUNT takes '\*'"),
            ("DERIVE Out(COUNT(a.v)) PATTERN A a", r"COUNT over matches takes '\*'"),
            ("DERIVE Out(AVG(a.v", r"expected '\)'"),
        ],
    )
    def test_error_cases(self, source, message):
        with pytest.raises(ParseError, match=message):
            parse(source)
