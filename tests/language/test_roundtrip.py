"""Property tests: random queries survive a print → parse round trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.language import parse_query
from repro.language.lexer import KEYWORDS

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s.upper() not in KEYWORDS
)
# The lexer recognizes keywords case-insensitively, so generated type names
# must avoid them too (e.g. "SEQ" or "Not" cannot name an event type).
type_names = st.from_regex(r"[A-Z][A-Za-z0-9]{0,8}", fullmatch=True).filter(
    lambda s: s.upper() not in KEYWORDS
)


@st.composite
def comparison(draw, var):
    attribute = draw(identifiers)
    op = draw(st.sampled_from(["=", "!=", ">", ">=", "<", "<="]))
    value = draw(st.integers(min_value=0, max_value=999))
    return f"{var}.{attribute} {op} {value}"


@st.composite
def where_clause(draw, var):
    parts = draw(st.lists(comparison(var), min_size=1, max_size=3))
    connective = draw(st.sampled_from([" AND ", " OR "]))
    return connective.join(parts)


@st.composite
def processing_query(draw):
    out_type = draw(type_names)
    in_type = draw(type_names)
    var = draw(identifiers)
    attributes = draw(st.lists(identifiers, min_size=1, max_size=4, unique=True))
    args = ", ".join(f"{var}.{a}" for a in attributes)
    source = f"DERIVE {out_type}({args}) PATTERN {in_type} {var}"
    if draw(st.booleans()):
        source += f" WHERE {draw(where_clause(var))}"
    contexts = draw(st.lists(identifiers, max_size=2, unique=True))
    if contexts:
        source += f" CONTEXT {', '.join(contexts)}"
    return source


@st.composite
def deriving_query(draw):
    action = draw(st.sampled_from(["INITIATE", "SWITCH", "TERMINATE"]))
    target = draw(identifiers)
    in_type = draw(type_names)
    var = draw(identifiers)
    source = f"{action} CONTEXT {target} PATTERN {in_type} {var}"
    if draw(st.booleans()):
        source += f" WHERE {draw(where_clause(var))}"
    context = draw(identifiers)
    source += f" CONTEXT {context}"
    return source


class TestRoundTrip:
    @given(processing_query())
    @settings(max_examples=150, deadline=None)
    def test_processing_round_trip(self, source):
        first = parse_query(source, name="q")
        second = parse_query(str(first), name="q")
        assert first.signature() == second.signature()
        assert first.contexts == second.contexts

    @given(deriving_query())
    @settings(max_examples=150, deadline=None)
    def test_deriving_round_trip(self, source):
        first = parse_query(source, name="q")
        second = parse_query(str(first), name="q")
        assert first.signature() == second.signature()
        assert first.target_context == second.target_context

    @given(processing_query())
    @settings(max_examples=100, deadline=None)
    def test_parse_is_deterministic(self, source):
        a = parse_query(source, name="q")
        b = parse_query(source, name="q")
        assert a.signature() == b.signature()


@st.composite
def aggregate_query(draw):
    out_type = draw(type_names)
    elements = draw(st.lists(
        st.tuples(type_names, identifiers), min_size=1, max_size=3,
        unique_by=lambda p: p[1],
    ))
    columns = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        func = draw(st.sampled_from(["COUNT", "SUM", "AVG", "MIN", "MAX"]))
        if func == "COUNT":
            columns.append("COUNT(*)")
        else:
            var = draw(st.sampled_from([v for _, v in elements]))
            columns.append(f"{func}({var}.{draw(identifiers)})")
    if len(elements) == 1:
        pattern = f"{elements[0][0]} {elements[0][1]}"
    else:
        pattern = "SEQ(" + ", ".join(f"{t} {v}" for t, v in elements) + ")"
    source = f"DERIVE {out_type}({', '.join(columns)}) PATTERN {pattern}"
    if draw(st.booleans()):
        source += f" WHERE {draw(where_clause(elements[0][1]))}"
    contexts = draw(st.lists(identifiers, max_size=2, unique=True))
    if contexts:
        source += f" CONTEXT {', '.join(contexts)}"
    return source


class TestAggregateRoundTrip:
    @given(aggregate_query())
    @settings(max_examples=150, deadline=None)
    def test_aggregate_round_trip(self, source):
        first = parse_query(source, name="q")
        second = parse_query(str(first), name="q")
        assert first.signature() == second.signature()
        assert first.derive_aggregates == second.derive_aggregates
