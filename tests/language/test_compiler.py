"""Tests for compiling query ASTs into EventQuery descriptors."""

import pytest

from repro.algebra.pattern import EventMatch, NegatedSpec, Sequence
from repro.core.queries import QueryAction
from repro.errors import CompileError
from repro.events.types import EventType
from repro.language import parse_query


class TestDerivingQueries:
    def test_initiate(self):
        query = parse_query(
            "INITIATE CONTEXT accident PATTERN Accident CONTEXT clear",
            name="q3",
        )
        assert query.action is QueryAction.INITIATE
        assert query.target_context == "accident"
        assert query.contexts == ("clear",)
        assert query.is_deriving

    def test_switch(self):
        query = parse_query(
            "SWITCH CONTEXT clear PATTERN Stats s WHERE s.cars < 10 "
            "CONTEXT congestion"
        )
        assert query.action is QueryAction.SWITCH
        assert query.where is not None

    def test_terminate(self):
        query = parse_query(
            "TERMINATE CONTEXT accident PATTERN Stats s CONTEXT accident"
        )
        assert query.action is QueryAction.TERMINATE


class TestProcessingQueries:
    def test_derive_items_named_from_attrs(self):
        query = parse_query(
            "DERIVE Toll(p.vid, p.sec, 5) PATTERN Car p CONTEXT congestion"
        )
        assert query.action is QueryAction.DERIVE
        names = [name for name, _ in query.derive_items]
        assert names == ["vid", "sec", "arg2"]

    def test_duplicate_item_names_deduplicated(self):
        query = parse_query("DERIVE X(a.n, b.n) PATTERN SEQ(A a, B b)")
        names = [name for name, _ in query.derive_items]
        assert names == ["n", "n2"]

    def test_declared_type_used(self):
        toll = EventType.define("Toll", vid="int")
        query = parse_query(
            "DERIVE Toll(p.vid) PATTERN Car p", types={"Toll": toll}
        )
        assert query.derive_type is toll

    def test_undeclared_type_created_schemaless(self):
        query = parse_query("DERIVE Fresh(p.vid) PATTERN Car p")
        assert query.derive_type.name == "Fresh"


class TestWhereSplit:
    def test_guard_extraction(self):
        """Conjuncts referencing a negated variable become its guard."""
        query = parse_query(
            "DERIVE X(p2.vid) "
            "PATTERN SEQ(NOT PositionReport p1, PositionReport p2) "
            "WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid "
            "AND p2.lane != 'exit'"
        )
        assert isinstance(query.pattern, Sequence)
        negated = query.pattern.elements[0]
        assert isinstance(negated, NegatedSpec)
        assert negated.guard is not None
        assert negated.guard.variables() == {"p1", "p2"}
        # residual filter only references positive variables
        assert query.where is not None
        assert query.where.variables() == {"p2"}

    def test_no_guard_when_where_ignores_negated_var(self):
        query = parse_query(
            "DERIVE X(p2.vid) PATTERN SEQ(NOT A p1, B p2) WHERE p2.vid > 3"
        )
        assert query.pattern.elements[0].guard is None

    def test_conjunct_over_two_negated_vars_rejected(self):
        with pytest.raises(CompileError, match="multiple negated"):
            parse_query(
                "DERIVE X(p.vid) PATTERN SEQ(NOT A a, P p, NOT B b) "
                "WHERE a.n = b.n"
            )


class TestPatternCompilation:
    def test_single_negated_pattern_rejected(self):
        with pytest.raises(CompileError, match="single negated"):
            parse_query("DERIVE X PATTERN NOT A a")

    def test_nested_seq_rejected(self):
        with pytest.raises(CompileError, match="nested SEQ"):
            parse_query("DERIVE X PATTERN SEQ(A a, SEQ(B b, C c))")

    def test_unnamed_elements_get_fresh_variables(self):
        query = parse_query("DERIVE X PATTERN SEQ(A, B, C c)")
        variables = query.pattern.variables()
        assert len(variables) == 3
        assert len(set(variables)) == 3
        assert "c" in variables

    def test_trailing_negation_needs_within(self):
        with pytest.raises(CompileError, match="WITHIN"):
            parse_query("DERIVE X PATTERN SEQ(A a, NOT B b) WHERE b.n = a.n")

    def test_trailing_negation_with_within(self):
        query = parse_query(
            "DERIVE X(a.n) PATTERN SEQ(A a, NOT B b) WHERE b.n = a.n WITHIN 15"
        )
        trailing = query.pattern.elements[1]
        assert isinstance(trailing, NegatedSpec)
        assert trailing.within == 15

    def test_leading_negation_has_no_within(self):
        query = parse_query(
            "DERIVE X(p2.vid) PATTERN SEQ(NOT A p1, B p2) "
            "WHERE p1.vid = p2.vid WITHIN 20"
        )
        leading = query.pattern.elements[0]
        assert leading.within is None

    def test_single_event_pattern(self):
        query = parse_query("DERIVE X(p.vid) PATTERN Car p")
        assert query.pattern == EventMatch("Car", "p")


class TestRoundTrip:
    def test_str_of_compiled_query_reparses(self):
        source = (
            "DERIVE Toll(p.vid, p.sec, 5) PATTERN NewTravelingCar p "
            "WHERE p.lane != 'exit' CONTEXT congestion"
        )
        query = parse_query(source, name="q1")
        reparsed = parse_query(str(query), name="q1b")
        assert reparsed.signature() == query.signature()


class TestAggregateLowering:
    def test_lowered_columns(self):
        query = parse_query(
            "DERIVE Out(COUNT(*), SUM(a.v), AVG(b.v)) "
            "PATTERN SEQ(A a, B b)",
            name="agg",
        )
        assert [
            (m.name, m.func, m.var, m.attribute)
            for m in query.derive_aggregates
        ] == [
            ("count", "count", None, None),
            ("v", "sum", "a", "v"),
            ("v2", "avg", "b", "v"),  # name clash gets a suffix
        ]
        assert query.derive_items == ()
        assert query.derive_type is not None

    def test_mixing_aggregates_and_expressions_rejected(self):
        with pytest.raises(CompileError, match="mixes aggregate calls"):
            parse_query(
                "DERIVE Out(COUNT(*), a.v) PATTERN A a", name="bad"
            )

    def test_unknown_variable_rejected(self):
        with pytest.raises(CompileError, match="unknown pattern variable"):
            parse_query(
                "DERIVE Out(SUM(z.v)) PATTERN SEQ(A a, B b)", name="bad"
            )

    def test_negated_variable_rejected(self):
        with pytest.raises(CompileError, match="unknown pattern variable"):
            parse_query(
                "DERIVE Out(SUM(n.v)) PATTERN SEQ(A a, NOT B n, C c)",
                name="bad",
            )
