"""Tests for the CAESAR query language tokenizer."""

import pytest

from repro.errors import LexerError
from repro.language.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_keywords_case_insensitive(self):
        for word in ("DERIVE", "derive", "Derive"):
            token = tokenize(word)[0]
            assert token.kind is TokenKind.KEYWORD
            assert token.text == "DERIVE"

    def test_all_keywords(self):
        source = "INITIATE SWITCH TERMINATE CONTEXT DERIVE PATTERN WHERE SEQ NOT AND OR WITHIN"
        assert all(k is TokenKind.KEYWORD for k in kinds(source)[:-1])

    def test_identifiers(self):
        [token, _] = tokenize("PositionReport")
        assert token.kind is TokenKind.IDENT
        assert token.text == "PositionReport"

    def test_identifier_with_underscore_and_digits(self):
        assert texts("seg_2 _x") == ["seg_2", "_x"]

    def test_numbers(self):
        assert texts("42 3.5") == ["42", "3.5"]
        assert kinds("42")[0] is TokenKind.NUMBER

    def test_strings_single_and_double_quotes(self):
        assert texts("'exit'") == ["exit"]
        assert texts('"exit"') == ["exit"]
        assert kinds("'exit'")[0] is TokenKind.STRING

    def test_punctuation(self):
        assert kinds("( ) , .")[:-1] == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.COMMA,
            TokenKind.DOT,
        ]


class TestOperators:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("=", "="), ("!=", "!="), (">", ">"), (">=", ">="),
            ("<", "<"), ("<=", "<="), ("+", "+"), ("-", "-"),
            ("*", "*"), ("/", "/"),
        ],
    )
    def test_ascii_operators(self, source, expected):
        token = tokenize(source)[0]
        assert token.kind is TokenKind.OPERATOR
        assert token.text == expected

    @pytest.mark.parametrize(
        "source,canonical", [("≠", "!="), ("≥", ">="), ("≤", "<=")]
    )
    def test_unicode_operators_canonicalized(self, source, canonical):
        assert tokenize(source)[0].text == canonical

    def test_attribute_access(self):
        tokens = tokenize("p2.vid")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.IDENT, TokenKind.DOT, TokenKind.IDENT,
        ]

    def test_number_followed_by_dot_digit(self):
        # "3.5" is one number, not 3 . 5
        assert texts("3.5") == ["3.5"]


class TestDiagnostics:
    def test_unknown_character(self):
        with pytest.raises(LexerError, match="unexpected character"):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(LexerError, match="unterminated"):
            tokenize("'oops")

    def test_newline_in_string(self):
        with pytest.raises(LexerError, match="newline"):
            tokenize("'line\nbreak'")

    def test_line_and_column_tracking(self):
        tokens = tokenize("DERIVE X\nPATTERN Y")
        pattern_token = tokens[2]
        assert pattern_token.text == "PATTERN"
        assert pattern_token.line == 2
        assert pattern_token.column == 1

    def test_error_carries_position(self):
        with pytest.raises(LexerError) as info:
            tokenize("ab\ncd @")
        assert info.value.line == 2
        assert info.value.column == 4


class TestRealQueries:
    def test_query_two_tokenizes(self):
        source = (
            "DERIVE NewTravelingCar(p2.vid, p2.sec) "
            "PATTERN SEQ(NOT PositionReport p1, PositionReport p2) "
            "WHERE p1.sec + 30 = p2.sec AND p2.lane != 'exit' "
            "CONTEXT congestion"
        )
        tokens = tokenize(source)
        assert tokens[-1].kind is TokenKind.EOF
        keyword_texts = [
            t.text for t in tokens if t.kind is TokenKind.KEYWORD
        ]
        assert keyword_texts == [
            "DERIVE", "PATTERN", "SEQ", "NOT", "WHERE", "AND", "CONTEXT",
        ]
