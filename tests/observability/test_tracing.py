"""Tests for the trace recorder and the Chrome trace exporter."""

import json

import pytest

from repro.observability import TraceRecorder, chrome_trace


class TestTraceRecorder:
    def test_record_builds_chrome_format_spans(self):
        recorder = TraceRecorder()
        span = recorder.record("batch", ts=10.0, dur=5.0, args={"t": 42})
        assert span["ph"] == "X"
        assert span["name"] == "batch"
        assert span["ts"] == 10.0
        assert span["dur"] == 5.0
        assert span["args"] == {"t": 42}
        assert isinstance(span["pid"], int)
        assert recorder.spans() == [span]

    def test_span_context_manager_times_work(self):
        recorder = TraceRecorder()
        with recorder.span("transaction", "engine", t=7, partition="p1"):
            pass
        (span,) = recorder.spans()
        assert span["cat"] == "engine"
        assert span["args"] == {"t": 7, "partition": "p1"}
        assert span["dur"] >= 0.0

    def test_ring_buffer_bounds_memory(self):
        recorder = TraceRecorder(capacity=3)
        for i in range(10):
            recorder.record(f"s{i}", ts=float(i), dur=1.0)
        assert len(recorder) == 3
        assert recorder.recorded_total == 10
        assert recorder.dropped == 7
        assert [s["name"] for s in recorder.spans()] == ["s7", "s8", "s9"]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity must be positive"):
            TraceRecorder(capacity=0)

    def test_since_returns_post_baseline_spans(self):
        recorder = TraceRecorder()
        recorder.record("old", ts=0.0, dur=1.0)
        baseline = recorder.baseline()
        assert recorder.since(baseline) == []
        recorder.record("new", ts=1.0, dur=1.0)
        assert [s["name"] for s in recorder.since(baseline)] == ["new"]

    def test_absorb_merges_worker_spans(self):
        parent = TraceRecorder()
        parent.record("parent", ts=0.0, dur=1.0)
        worker = TraceRecorder()
        worker.record("worker", ts=5.0, dur=1.0)
        parent.absorb(worker.spans())
        assert [s["name"] for s in parent.spans()] == ["parent", "worker"]
        assert parent.recorded_total == 2


class TestChromeTrace:
    def test_document_is_valid_json_with_trace_events(self):
        recorder = TraceRecorder()
        recorder.record("batch", ts=0.0, dur=2.0)
        document = json.loads(chrome_trace(recorder))
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == 1
        assert document["otherData"]["recorded_total"] == 1
        assert document["otherData"]["dropped"] == 0

    def test_accepts_plain_span_lists(self):
        recorder = TraceRecorder()
        recorder.record("a", ts=0.0, dur=1.0)
        recorder.record("b", ts=1.0, dur=1.0)
        selected = [s for s in recorder.spans() if s["name"] == "b"]
        document = json.loads(chrome_trace(selected))
        assert [e["name"] for e in document["traceEvents"]] == ["b"]
        assert "otherData" not in document

    def test_non_serializable_args_are_stringified(self):
        recorder = TraceRecorder()
        recorder.record("batch", ts=0.0, dur=1.0, args={"part": (0, 1)})
        json.loads(chrome_trace(recorder))
