"""Cross-backend metric parity: the deterministic projection is identical.

The contract mirrors the report-parity guarantee of the execution
backends: every counter marked deterministic — batches, events, outputs,
cost units, routing decisions, GC activity — fans in from shard workers
to byte-identical values, whichever backend ran the stream.  Wall-clock
histograms and point-in-time gauges are outside the projection.
"""

import json

import pytest

from repro.runtime import (
    CaesarEngine,
    ProcessPoolBackend,
    SerialBackend,
    SupervisedEngine,
    ThreadPoolBackend,
    report_to_dict,
)

from tests.observability.conftest import (
    build_model,
    by_segment,
    multi_partition_stream,
)

BACKENDS = {
    "serial": lambda: SerialBackend(),
    "thread": lambda: ThreadPoolBackend(max_workers=4),
    "process": lambda: ProcessPoolBackend(max_workers=2),
}


def deterministic_snapshot(backend, engine_class=CaesarEngine):
    engine = engine_class(
        build_model(),
        partition_by=by_segment,
        seconds_per_cost_unit=1e-6,
        backend=backend,
        observability="on",
    )
    report = engine.run(multi_partition_stream())
    snapshot = engine.observability.registry.snapshot(deterministic_only=True)
    return report, json.dumps(snapshot, sort_keys=True)


class TestMetricParity:
    def test_deterministic_snapshot_identical_across_backends(self):
        results = {
            name: deterministic_snapshot(factory())
            for name, factory in BACKENDS.items()
        }
        _, serial = results["serial"]
        for name, (_, snapshot) in results.items():
            assert snapshot == serial, f"{name} diverged from serial"

    def test_parity_snapshot_is_nontrivial(self):
        _, snapshot = deterministic_snapshot(SerialBackend())
        values = json.loads(snapshot)
        assert values["caesar_events_total"] > 0
        assert values["caesar_cost_units_total"] > 0
        assert values["caesar_gc_runs_total"] >= 0

    def test_supervised_parity(self):
        results = {
            name: deterministic_snapshot(
                factory(), engine_class=SupervisedEngine
            )
            for name, factory in BACKENDS.items()
        }
        _, serial = results["serial"]
        for name, (_, snapshot) in results.items():
            assert snapshot == serial, f"{name} diverged from serial"

    def test_reports_remain_identical_too(self):
        reports = {}
        for name, factory in BACKENDS.items():
            report, _ = deterministic_snapshot(factory())
            d = report_to_dict(report)
            # transport is a diagnostic of *how* events moved (shm frames,
            # pipe bytes), inherently backend-specific — not part of the
            # deterministic parity surface, like wall time.
            for key in ("wall_seconds", "throughput", "backend", "transport"):
                d.pop(key, None)
            reports[name] = d
        assert reports["serial"] == reports["thread"] == reports["process"]

    def test_linear_road_parity(self):
        from repro.linearroad.generator import (
            LinearRoadConfig,
            generate_stream,
            paper_timeline_schedules,
        )
        from repro.linearroad.queries import (
            build_traffic_model,
            segment_partitioner,
        )

        config = paper_timeline_schedules(
            LinearRoadConfig(
                num_roads=4, segments_per_road=2, duration_minutes=8, seed=7
            )
        )
        snapshots = {}
        for name, factory in BACKENDS.items():
            engine = CaesarEngine(
                build_traffic_model(),
                partition_by=segment_partitioner,
                retention=120,
                backend=factory(),
                observability="on",
            )
            engine.run(generate_stream(config))
            assert len(engine.observability.registry.snapshot()) > 0
            snapshots[name] = json.dumps(
                engine.observability.registry.snapshot(
                    deterministic_only=True
                ),
                sort_keys=True,
            )
        assert (
            snapshots["serial"] == snapshots["thread"] == snapshots["process"]
        )

    @pytest.mark.parametrize("backend_name", sorted(BACKENDS))
    def test_trace_spans_fan_in(self, backend_name):
        engine = CaesarEngine(
            build_model(),
            partition_by=by_segment,
            backend=BACKENDS[backend_name](),
            observability="trace",
        )
        engine.run(multi_partition_stream())
        names = {s["name"] for s in engine.observability.recorder.spans()}
        assert names >= {"batch", "transaction", "plan"}
