"""Shared fixtures for the observability tests: a small context-switching
model over a multi-segment stream, mirroring the backend test workload."""

import pytest

from repro.core.model import CaesarModel
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.events.types import EventType
from repro.language import parse_query

READING = EventType.define("ObsReading", value="int", seg="int", sec="int")


def build_model():
    model = CaesarModel(default_context="normal")
    model.add_context("alert")
    model.add_query(parse_query(
        "INITIATE CONTEXT alert PATTERN ObsReading r WHERE r.value > 100 "
        "CONTEXT normal", name="up"))
    model.add_query(parse_query(
        "TERMINATE CONTEXT alert PATTERN ObsReading r WHERE r.value <= 100 "
        "CONTEXT alert", name="down"))
    model.add_query(parse_query(
        "DERIVE Norm(r.sec) PATTERN ObsReading r CONTEXT normal",
        name="norm"))
    model.add_query(parse_query(
        "DERIVE Alarm(r.value) PATTERN ObsReading r CONTEXT alert",
        name="alarm"))
    return model


def reading(t, value, seg=0):
    return Event(READING, t, {"value": value, "seg": seg, "sec": t})


def by_segment(event):
    return event["seg"]


def multi_partition_stream(segments=8, steps=12):
    events = []
    for t in range(steps):
        for seg in range(segments):
            value = 150 if (t + seg) % 4 == 0 else 50
            events.append(reading(t * 10, value, seg=seg))
    return EventStream(events)


@pytest.fixture
def model():
    return build_model()


@pytest.fixture
def stream():
    return multi_partition_stream()
