"""Tests for the Prometheus / JSON / human exporters."""

from repro.observability import (
    MetricsRegistry,
    NULL_REGISTRY,
    Observability,
    render_stats,
    to_json_snapshot,
    to_prometheus,
)


def sample_registry():
    registry = MetricsRegistry()
    registry.counter("caesar_events_total", "Input events").inc(100)
    registry.gauge("caesar_partitions", "Partitions").set(8)
    registry.counter(
        "caesar_cost", "Cost units", labels={"context": "alert"}
    ).inc(2.5)
    h = registry.histogram("caesar_lat", "Latency", buckets=(0.5, 1.0))
    h.observe(0.25)
    h.observe(0.75)
    h.observe(3.0)
    return registry


class TestPrometheus:
    def test_headers_and_series(self):
        text = to_prometheus(sample_registry())
        lines = text.splitlines()
        assert "# HELP caesar_events_total Input events" in lines
        assert "# TYPE caesar_events_total counter" in lines
        assert "caesar_events_total 100" in lines
        assert "# TYPE caesar_partitions gauge" in lines
        assert "caesar_partitions 8" in lines
        assert 'caesar_cost{context="alert"} 2.5' in lines
        assert text.endswith("\n")

    def test_histogram_expands_to_buckets_sum_count(self):
        lines = to_prometheus(sample_registry()).splitlines()
        assert 'caesar_lat_bucket{le="0.5"} 1' in lines
        assert 'caesar_lat_bucket{le="1"} 2' in lines
        assert 'caesar_lat_bucket{le="+Inf"} 3' in lines
        assert "caesar_lat_sum 4" in lines
        assert "caesar_lat_count 3" in lines

    def test_label_variants_share_one_header(self):
        registry = MetricsRegistry()
        registry.counter("hits", "Hits", labels={"ctx": "a"}).inc()
        registry.counter("hits", "Hits", labels={"ctx": "b"}).inc(2)
        text = to_prometheus(registry)
        assert text.count("# TYPE hits counter") == 1
        assert 'hits{ctx="a"} 1' in text
        assert 'hits{ctx="b"} 2' in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(NULL_REGISTRY) == ""


class TestJsonSnapshot:
    def test_registry_snapshot(self):
        snap = to_json_snapshot(sample_registry())
        assert snap["metrics"]["caesar_events_total"] == 100.0
        assert snap["metrics"]["caesar_lat"]["count"] == 3

    def test_observability_snapshot_includes_trace_accounting(self):
        obs = Observability(tracing=True)
        obs.registry.counter("hits").inc()
        with obs.span("batch", t=1):
            pass
        snap = to_json_snapshot(obs)
        assert snap["metrics"]["hits"] == 1.0
        assert snap["trace"]["recorded"] == 1
        assert snap["trace"]["dropped"] == 0

    def test_deterministic_only_passthrough(self):
        registry = sample_registry()
        snap = to_json_snapshot(registry, deterministic_only=True)
        assert "caesar_lat" not in snap["metrics"]
        assert "caesar_partitions" not in snap["metrics"]
        assert snap["metrics"]["caesar_events_total"] == 100.0


class TestRenderStats:
    def test_aligned_table(self):
        text = render_stats(sample_registry(), title="sample")
        lines = text.splitlines()
        assert lines[0] == "== sample =="
        assert any(
            line.startswith("caesar_events_total") and "counter" in line
            and line.rstrip().endswith("100")
            for line in lines
        )
        assert any("count=3" in line for line in lines)

    def test_disabled_registry_message(self):
        assert "disabled" in render_stats(NULL_REGISTRY)
