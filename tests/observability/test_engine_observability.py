"""Engine-level observability tests: instrumentation, spans, hooks.

The acceptance bar from the subsystem's design: metrics on by default and
cheap, a fully disabled mode that changes nothing about the report, valid
Prometheus and Chrome-trace exports for a multi-partition Linear Road run.
"""

import json

import pytest

from repro.observability import (
    NULL_OBSERVABILITY,
    NullObservability,
    Observability,
    OBSERVABILITY_ENV_VAR,
    chrome_trace,
    resolve_observability,
    to_prometheus,
)
from repro.runtime import (
    CaesarEngine,
    REASON_PLAN_FAULT,
    SupervisedEngine,
    report_to_dict,
)
from repro.testing import inject_plan_fault

from tests.observability.conftest import (
    build_model,
    by_segment,
    multi_partition_stream,
)


def comparable(report):
    d = report_to_dict(report)
    # transport byte counts vary with the pickled size of worker summaries
    # (which include observability deltas), so like wall time they are not
    # part of the "metrics don't change the computation" surface.
    for key in ("wall_seconds", "throughput", "transport"):
        d.pop(key, None)
    return d


def run_engine(observability, **kwargs):
    engine = CaesarEngine(
        build_model(),
        partition_by=by_segment,
        seconds_per_cost_unit=1e-6,
        observability=observability,
        **kwargs,
    )
    report = engine.run(multi_partition_stream())
    return engine, report


class TestResolveObservability:
    def test_instance_passes_through(self):
        obs = Observability()
        assert resolve_observability(obs) is obs

    def test_booleans(self):
        assert resolve_observability(False) is NULL_OBSERVABILITY
        assert resolve_observability(True).enabled

    def test_none_defaults_to_metrics_on(self, monkeypatch):
        monkeypatch.delenv(OBSERVABILITY_ENV_VAR, raising=False)
        obs = resolve_observability(None)
        assert obs.enabled
        assert not obs.tracing

    def test_none_consults_environment(self, monkeypatch):
        monkeypatch.setenv(OBSERVABILITY_ENV_VAR, "off")
        assert resolve_observability(None) is NULL_OBSERVABILITY
        monkeypatch.setenv(OBSERVABILITY_ENV_VAR, "trace")
        obs = resolve_observability(None)
        assert obs.tracing and obs.detailed

    def test_mode_strings(self):
        assert resolve_observability("off") is NULL_OBSERVABILITY
        assert resolve_observability("on").enabled
        detailed = resolve_observability("detailed")
        assert detailed.detailed and not detailed.tracing
        assert resolve_observability("TRACE").tracing

    def test_fresh_instance_per_resolution(self):
        assert resolve_observability("on") is not resolve_observability("on")

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown observability mode"):
            resolve_observability("bogus")


class TestDefaultMetrics:
    def test_engine_counts_batches_events_outputs(self):
        engine, report = run_engine("on")
        snap = engine.observability.registry.snapshot()
        assert snap["caesar_events_total"] == report.events_processed
        assert snap["caesar_outputs_total"] == sum(
            report.outputs_by_type.values()
        )
        assert snap["caesar_batches_total"] == 12
        assert snap["caesar_cost_units_total"] == pytest.approx(
            report.cost_units
        )
        assert snap["caesar_transactions_total"] > 0

    def test_routing_counters_match_totals(self):
        engine, report = run_engine("on")
        snap = engine.observability.registry.snapshot()
        assert snap["caesar_batches_suppressed_total"] == (
            report.suppressed_batches
        )
        assert snap["caesar_batches_routed_total"] == report.routed_batches

    def test_per_context_cost_breakdown(self):
        engine, report = run_engine("on")
        snap = engine.observability.registry.snapshot()
        per_context = {
            key: value for key, value in snap.items()
            if key.startswith("caesar_context_cost_units_total")
        }
        assert set(per_context) == {
            'caesar_context_cost_units_total{context="alert"}',
            'caesar_context_cost_units_total{context="normal"}',
        }
        assert sum(per_context.values()) == pytest.approx(report.cost_units)

    def test_gauges_reflect_final_state(self):
        engine, report = run_engine("on")
        snap = engine.observability.registry.snapshot()
        assert snap["caesar_partitions"] == 8
        assert snap["caesar_context_windows"] == sum(
            len(ws) for ws in report.windows_by_partition.values()
        )

    def test_gc_counters_are_live(self):
        engine, _ = run_engine("on", retention=20, gc_interval=30)
        snap = engine.observability.registry.snapshot()
        assert snap["caesar_gc_runs_total"] > 0
        assert snap["caesar_gc_reclaimed_total"] >= 0

    def test_batch_latency_histogram_populated(self):
        engine, _ = run_engine("on")
        snap = engine.observability.registry.snapshot()
        assert snap["caesar_batch_latency_seconds"]["count"] == 12
        assert snap["caesar_batch_service_seconds"]["count"] == 12


class TestDisabledObservability:
    def test_off_spec_yields_null_facade(self):
        engine, _ = run_engine("off")
        assert isinstance(engine.observability, NullObservability)
        assert engine.observability.registry.snapshot() == {}

    def test_report_identical_with_and_without_metrics(self):
        _, report_on = run_engine("on")
        _, report_off = run_engine("off")
        assert comparable(report_on) == comparable(report_off)

    def test_rerun_on_same_engine_does_not_double_count(self):
        engine, report = run_engine("on")
        report2 = engine.run(multi_partition_stream())
        snap = engine.observability.registry.snapshot()
        assert comparable(report) == comparable(report2)
        assert snap["caesar_events_total"] == 2 * report.events_processed
        assert snap["caesar_cost_units_total"] == pytest.approx(
            2 * report.cost_units
        )


class TestDetailedAndTracing:
    def test_detailed_adds_plan_timers(self):
        engine, _ = run_engine("detailed")
        snap = engine.observability.registry.snapshot()
        plan_keys = [k for k in snap if k.startswith("caesar_plan_seconds")]
        assert plan_keys
        assert any('phase="processing"' in k for k in plan_keys)

    def test_tracing_records_spans(self):
        engine, _ = run_engine("trace")
        recorder = engine.observability.recorder
        names = {span["name"] for span in recorder.spans()}
        assert names >= {"batch", "transaction", "plan"}

    def test_default_mode_records_no_spans(self):
        engine, _ = run_engine("on")
        assert engine.observability.recorder is None


class TestSnapshotHooks:
    def test_periodic_snapshots_at_batch_boundaries(self):
        seen = []
        obs = Observability(snapshot_interval=5, on_snapshot=seen.append)
        engine, _ = run_engine(obs)
        assert len(seen) == 2  # 12 batches, interval 5 -> after 5 and 10
        assert seen[0]["stream_time"] == 40
        assert seen[1]["stream_time"] == 90
        assert seen[0]["metrics"]["caesar_batches_total"] == 5.0
        snap = engine.observability.registry.snapshot()
        assert snap["caesar_snapshots_total"] == 2

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="snapshot_interval"):
            Observability(snapshot_interval=0)


class TestSupervisedObservability:
    def test_plan_failures_and_dead_letters_counted(self):
        engine = SupervisedEngine(
            build_model(),
            partition_by=by_segment,
            failure_threshold=2,
            observability="on",
        )
        inject_plan_fault(engine, "alert", at_times={50})
        report = engine.run(multi_partition_stream())
        snap = engine.observability.registry.snapshot()
        assert snap["caesar_plan_failures_total"] == report.plan_failures
        dlq_key = (
            'caesar_dead_letters_total{reason="%s"}' % REASON_PLAN_FAULT
        )
        assert snap[dlq_key] >= 1
        by_reason = {
            key: value for key, value in snap.items()
            if key.startswith("caesar_dead_letters_total")
        }
        assert sum(by_reason.values()) == sum(report.dead_lettered.values())
        assert snap["caesar_dead_letters_pending"] == sum(by_reason.values())

    def test_clean_run_reports_zero_failures(self):
        engine = SupervisedEngine(
            build_model(), partition_by=by_segment, observability="on"
        )
        engine.run(multi_partition_stream())
        snap = engine.observability.registry.snapshot()
        assert snap["caesar_plan_failures_total"] == 0
        assert snap["caesar_plans_quarantined"] == 0


class TestLinearRoadExports:
    """The 8-partition Linear Road acceptance run."""

    @pytest.fixture(scope="class")
    def traffic_engine(self):
        from repro.linearroad.generator import (
            LinearRoadConfig,
            generate_stream,
            paper_timeline_schedules,
        )
        from repro.linearroad.queries import (
            build_traffic_model,
            segment_partitioner,
        )

        config = paper_timeline_schedules(
            LinearRoadConfig(
                num_roads=4,
                segments_per_road=2,
                duration_minutes=8,
                seed=7,
            )
        )
        engine = CaesarEngine(
            build_traffic_model(),
            partition_by=segment_partitioner,
            retention=120,
            observability="trace",
        )
        engine.run(generate_stream(config))
        return engine

    def test_runs_eight_partitions(self, traffic_engine):
        snap = traffic_engine.observability.registry.snapshot()
        assert snap["caesar_partitions"] == 8

    def test_prometheus_export_is_well_formed(self, traffic_engine):
        text = to_prometheus(traffic_engine.observability.registry)
        assert text.endswith("\n")
        for line in text.splitlines():
            assert line.startswith("#") or " " in line
        assert "# TYPE caesar_events_total counter" in text
        assert "caesar_batch_latency_seconds_bucket" in text
        assert 'le="+Inf"' in text

    def test_chrome_trace_is_valid(self, traffic_engine):
        document = json.loads(
            chrome_trace(traffic_engine.observability.recorder)
        )
        events = document["traceEvents"]
        assert events
        assert {e["ph"] for e in events} == {"X"}
        assert {e["name"] for e in events} >= {"batch", "transaction"}
        for event in events:
            assert event["dur"] >= 0
            assert isinstance(event["ts"], float)
