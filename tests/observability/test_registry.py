"""Tests for the metrics registry: instruments, snapshots, fan-in."""

import pytest

from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    SIZE_BUCKETS,
    TIME_BUCKETS,
)
from repro.observability.registry import NULL_INSTRUMENT, format_bound


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("hits")
        assert c.value == 0.0
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_rejects_negative_increments(self):
        c = Counter("hits")
        with pytest.raises(ValueError, match="must be >= 0"):
            c.inc(-1)

    def test_deterministic_by_default(self):
        assert Counter("hits").deterministic is True


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0

    def test_not_deterministic_by_default(self):
        registry = MetricsRegistry()
        assert registry.gauge("depth").deterministic is False


class TestHistogram:
    def test_observe_assigns_buckets(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(100.0)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(105.5)
        assert h.mean == pytest.approx(105.5 / 3)

    def test_boundary_value_falls_in_lower_bucket(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_cumulative_buckets_end_with_inf(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        assert h.cumulative_buckets() == [("1", 1), ("10", 2), ("+Inf", 3)]

    def test_rejects_empty_or_unsorted_buckets(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("lat", buckets=())
        with pytest.raises(ValueError, match="ascending"):
            Histogram("lat", buckets=(10.0, 1.0))

    def test_default_bucket_tables(self):
        assert list(TIME_BUCKETS) == sorted(TIME_BUCKETS)
        assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)

    def test_format_bound(self):
        assert format_bound(1.0) == "1"
        assert format_bound(0.5) == "0.5"


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", "help text")
        b = registry.counter("hits")
        assert a is b
        assert len(registry) == 1

    def test_label_variants_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", labels={"ctx": "x"})
        b = registry.counter("hits", labels={"ctx": "y"})
        assert a is not b
        assert len(registry) == 2

    def test_label_order_is_normalized(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", labels={"a": "1", "b": "2"})
        b = registry.counter("hits", labels={"b": "2", "a": "1"})
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("hits")

    def test_snapshot_keys_and_values(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(7)
        registry.counter("ctx", labels={"name": "alert"}).inc()
        h = registry.histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        snap = registry.snapshot()
        assert snap["hits"] == 3.0
        assert snap["depth"] == 7.0
        assert snap['ctx{name="alert"}'] == 1.0
        assert snap["lat"] == {
            "count": 1, "sum": 0.5, "buckets": {"1": 1, "+Inf": 1},
        }

    def test_deterministic_only_projection(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.gauge("depth").set(1)
        registry.histogram("lat").observe(0.1)
        registry.histogram("exact", deterministic=True).observe(2.0)
        snap = registry.snapshot(deterministic_only=True)
        assert set(snap) == {"hits", "exact"}


class TestFanIn:
    def test_delta_measures_post_baseline_growth(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        hist = registry.histogram("lat", buckets=(1.0,))
        counter.inc(5)
        hist.observe(0.5)
        baseline = registry.baseline()
        counter.inc(2)
        hist.observe(10.0)
        delta = registry.delta(baseline)
        assert delta["counters"][("hits", ())][0] == 2.0
        counts, sum_change, count_change, *_ = delta["histograms"][("lat", ())]
        assert counts == [0, 1]
        assert sum_change == pytest.approx(10.0)
        assert count_change == 1

    def test_unchanged_instruments_are_omitted(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(5)
        baseline = registry.baseline()
        delta = registry.delta(baseline)
        assert delta == {"counters": {}, "histograms": {}}

    def test_merge_delta_recreates_missing_instruments(self):
        worker = MetricsRegistry()
        worker.counter("hits", "help!", labels={"ctx": "a"}).inc(3)
        worker.histogram("lat", buckets=(1.0,)).observe(0.2)
        parent = MetricsRegistry()
        parent.merge_delta(worker.delta(None))
        assert parent.snapshot() == worker.snapshot()
        merged = parent.get("hits", {"ctx": "a"})
        assert merged.help == "help!"

    def test_merge_delta_accumulates_into_existing(self):
        parent = MetricsRegistry()
        parent.counter("hits").inc(10)
        worker = MetricsRegistry()
        worker.counter("hits").inc(4)
        parent.merge_delta(worker.delta(None))
        assert parent.get("hits").value == 14.0

    def test_merge_none_is_noop(self):
        parent = MetricsRegistry()
        parent.merge_delta(None)
        assert len(parent) == 0


class TestNullRegistry:
    def test_hands_out_shared_null_instrument(self):
        assert NULL_REGISTRY.counter("anything") is NULL_INSTRUMENT
        assert NULL_REGISTRY.gauge("other") is NULL_INSTRUMENT
        assert NULL_REGISTRY.histogram("third") is NULL_INSTRUMENT

    def test_mutators_do_nothing(self):
        instrument = NULL_REGISTRY.counter("x")
        instrument.inc(5)
        instrument.observe(1.0)
        instrument.set(9)
        instrument.dec()
        assert instrument.value == 0.0
        assert NULL_REGISTRY.snapshot() == {}
        assert len(NULL_REGISTRY.instruments()) == 0

    def test_fan_in_is_empty(self):
        assert NULL_REGISTRY.baseline() == {}
        assert NULL_REGISTRY.delta(None) == {"counters": {}, "histograms": {}}
        NULL_REGISTRY.merge_delta({"counters": {}, "histograms": {}})

    def test_disabled_flag(self):
        assert NullRegistry().enabled is False
        assert MetricsRegistry().enabled is True
