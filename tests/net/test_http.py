"""In-process tests for the HTTP front end (:class:`HttpFrontEnd`)."""

import json
import socket
import urllib.error
import urllib.request

from repro.difftest.scenarios import get_scenario
from repro.net.http import HttpFrontEnd
from repro.net.protocol import scenario_types
from repro.runtime import CaesarEngine, EngineService


def build_service():
    scenario = get_scenario("threshold")
    engine = CaesarEngine(
        scenario.build_model(),
        partition_by=scenario.partition_by,
        retention=scenario.retention,
    )
    return EngineService(engine, on_emit=lambda e: None)


def start_front():
    service = build_service()
    front = HttpFrontEnd(service, types=scenario_types("threshold"))
    host, port = front.start()
    return service, front, f"http://{host}:{port}"


def get(url):
    try:
        response = urllib.request.urlopen(url, timeout=30)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode("utf-8"))
    return response.status, json.loads(response.read().decode("utf-8"))


def post_events(base, body):
    request = urllib.request.Request(
        f"{base}/events", data=body.encode("utf-8"), method="POST"
    )
    try:
        response = urllib.request.urlopen(request, timeout=30)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode("utf-8"))
    return response.status, json.loads(response.read().decode("utf-8"))


def event_line(t, value, seq=None):
    message = {
        "type": "DiffReading",
        "time": t,
        "payload": {"value": value, "sec": t, "zone": 0},
    }
    if seq is not None:
        message["seq"] = seq
    return json.dumps(message)


class TestPostEvents:
    def test_ndjson_body_with_per_line_accounting(self):
        service, front, base = start_front()
        body = "\n".join([
            event_line(0, 5),
            "",  # blank lines are skipped, not rejected
            "utter garbage",
            event_line(10, 15),
            '{"type": "DiffReading"}',  # missing time
            json.dumps({"op": "noop"}),
        ]) + "\n"
        status, result = post_events(base, body)
        assert status == 200
        assert result["accepted"] == 2
        assert result["rejected"] == 3
        codes = [e["error"] for e in result["errors"]]
        assert codes == ["parse", "bad-event", "unknown-op"]
        report = service.stop()
        front.shutdown()
        assert report.events_processed == 2

    def test_seq_tagged_lines_are_resequenced(self):
        service, front, base = start_front()
        # sent out of order, delivered in order
        status, result = post_events(base, "\n".join([
            event_line(10, 15, seq=1),
            event_line(0, 5, seq=0),
        ]) + "\n")
        assert status == 200
        assert result["accepted"] == 2
        report = service.stop()
        front.shutdown()
        assert report.events_processed == 2

    def test_deploy_op_in_body(self):
        service, front, base = start_front()
        status, result = post_events(base, json.dumps({
            "op": "deploy",
            "name": "spike",
            "query": "DERIVE Spike(r.value, r.sec) PATTERN DiffReading r "
                     "WHERE r.value > 18 CONTEXT alert",
        }) + "\n")
        assert status == 200
        assert result == {"accepted": 1, "rejected": 0, "errors": []}
        service.stop()
        front.shutdown()

    def test_stopped_service_returns_503(self):
        service, front, base = start_front()
        service.stop()
        status, result = post_events(base, event_line(0, 5) + "\n")
        assert status == 503
        front.shutdown()

    def test_missing_content_length_is_411(self):
        service, front, base = start_front()
        host, port = front.address
        sock = socket.create_connection((host, port), timeout=30)
        sock.sendall(
            b"POST /events HTTP/1.1\r\nHost: x\r\n"
            b"Connection: close\r\n\r\n"
        )
        head = sock.makefile("rb").readline()
        assert b"411" in head
        sock.close()
        service.stop()
        front.shutdown()

    def test_oversized_body_is_413(self):
        service = build_service()
        front = HttpFrontEnd(service, max_body_bytes=64)
        host, port = front.start()
        status, result = post_events(
            f"http://{host}:{port}", event_line(0, 5) * 10 + "\n"
        )
        assert status == 413
        service.stop()
        front.shutdown()


class TestHealthz:
    def test_ok_then_stopped(self):
        service, front, base = start_front()
        status, payload = get(f"{base}/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert {"watermark", "queue_depth", "emitted"} <= set(payload)
        service.stop()
        status, payload = get(f"{base}/healthz")
        assert status == 503
        assert payload["status"] == "stopped"
        front.shutdown()

    def test_unknown_route_is_404(self):
        service, front, base = start_front()
        status, _ = get(f"{base}/nope")
        assert status == 404
        service.stop()
        front.shutdown()


class TestMetrics:
    def test_prometheus_text_exposes_service_and_net_families(self):
        service, front, base = start_front()
        post_events(base, event_line(0, 5) + "\n")
        response = urllib.request.urlopen(f"{base}/metrics", timeout=30)
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.read().decode("utf-8")
        for family in (
            "caesar_service_queue_depth",
            "caesar_service_watermark",
            "caesar_net_http_requests_total",
            "caesar_net_bytes_in_total",
            "caesar_net_rejected_lines_total",
        ):
            assert family in text, f"/metrics missing {family}"
        # every sample line is NAME{LABELS} VALUE or NAME VALUE
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name, line
            float(value)  # valid exposition: parseable sample value
        service.stop()
        front.shutdown()
