"""Round-trip tests for ``repro serve --listen/--http`` as a child
process — the production shape: ephemeral ports discovered from stderr,
a subscriber collecting emissions, SIGTERM driving the graceful drain.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import urllib.request

from tests.service.test_serve_cli import EVENTS, event_line, expected_rows

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def spawn(*extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("CAESAR_BACKEND", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--scenario", "threshold",
         "--listen", "127.0.0.1:0", "--summary", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    announced = 2 if "--http" in extra else 1
    addresses = {}
    for _ in range(announced):
        line = proc.stderr.readline()
        match = re.match(r"(listening|http) on ([\d.]+):(\d+)", line)
        assert match, f"unexpected announcement: {line!r}"
        addresses[match.group(1)] = (match.group(2), int(match.group(3)))
    return proc, addresses


def finish(proc):
    try:
        out, err = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    return out, err


class TestServeListen:
    def test_tcp_round_trip_with_sigterm_drain(self):
        from repro.net.client import ServeClient

        proc, addresses = spawn()
        try:
            host, port = addresses["listening"]
            subscriber = ServeClient(host, port)
            subscriber.subscribe()
            rows = []
            collector = threading.Thread(
                target=lambda: rows.extend(subscriber.emissions()),
                daemon=True,
            )
            collector.start()

            producer = ServeClient(host, port)
            for t, v in EVENTS:
                producer.send_event(
                    "DiffReading", t, {"value": v, "sec": t, "zone": 0}
                )
            assert producer.ping()["ok"]  # everything above was read
            producer.close()

            proc.send_signal(signal.SIGTERM)
            collector.join(timeout=60)
            assert not collector.is_alive(), "no EOF after SIGTERM drain"
            subscriber.close()
        finally:
            out, err = finish(proc)
        assert proc.returncode == 0, err
        assert rows == expected_rows()
        assert "draining" in err
        assert "events=" in err  # --summary report after the drain

    def test_stop_op_drains_and_exits(self):
        from repro.net.client import ServeClient

        proc, addresses = spawn()
        try:
            host, port = addresses["listening"]
            client = ServeClient(host, port)
            for t, v in EVENTS[:2]:
                client.send_event(
                    "DiffReading", t, {"value": v, "sec": t, "zone": 0}
                )
            assert client.stop_server()["ok"]
            client.close()
        finally:
            out, err = finish(proc)
        assert proc.returncode == 0, err
        assert "events=" in err

    def test_http_alongside_tcp(self):
        proc, addresses = spawn("--http", "127.0.0.1:0")
        try:
            host, port = addresses["http"]
            base = f"http://{host}:{port}"
            body = "\n".join(
                event_line(t, v) for t, v in EVENTS
            ).encode("utf-8") + b"\n"
            request = urllib.request.Request(
                f"{base}/events", data=body, method="POST"
            )
            result = json.load(urllib.request.urlopen(request, timeout=60))
            assert result["accepted"] == len(EVENTS)
            health = json.load(
                urllib.request.urlopen(f"{base}/healthz", timeout=60)
            )
            assert health["status"] == "ok"
            metrics = urllib.request.urlopen(
                f"{base}/metrics", timeout=60
            ).read().decode("utf-8")
            assert "caesar_net_http_requests_total" in metrics
            assert "caesar_service_queue_depth" in metrics
            proc.send_signal(signal.SIGTERM)
        finally:
            out, err = finish(proc)
        assert proc.returncode == 0, err
        assert "events=" in err
