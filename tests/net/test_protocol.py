"""Unit tests for the line protocol: parsing, replies, the
limit-enforcing :class:`LineReader`."""

import json
import socket

import pytest

from repro.net.protocol import (
    LineReader,
    LineTooLong,
    ProtocolError,
    TypeResolver,
    encode_event,
    event_row,
    parse_line,
    scenario_types,
)


def resolver():
    return TypeResolver(scenario_types("threshold"))


class TestParseLine:
    def test_event_line(self):
        parsed = parse_line(json.dumps({
            "type": "DiffReading",
            "time": 10,
            "payload": {"value": 5, "sec": 10, "zone": 0},
        }), resolver())
        assert parsed.kind == "event"
        assert parsed.seq is None
        assert parsed.event.timestamp == 10
        assert parsed.event.payload["value"] == 5

    def test_known_type_is_reused_and_unknown_created(self):
        resolve = resolver()
        known = parse_line(
            '{"type": "DiffReading", "time": 0}', resolve
        ).event.event_type
        assert known is resolve.types["DiffReading"]
        fresh = parse_line(
            '{"type": "Novel", "time": 0}', resolve
        ).event.event_type
        assert fresh.name == "Novel"
        # and it is remembered: same name resolves to the same type
        again = parse_line('{"type": "Novel", "time": 1}', resolve).event
        assert again.event_type is fresh

    def test_seq_tag(self):
        parsed = parse_line(
            '{"type": "DiffReading", "time": 0, "seq": 7}', resolver()
        )
        assert parsed.seq == 7

    def test_op_line(self):
        parsed = parse_line('{"op": "ping"}', resolver())
        assert parsed.kind == "op"
        assert parsed.op == {"op": "ping"}

    @pytest.mark.parametrize("line,code", [
        ("not json", "parse"),
        ("[1, 2]", "parse"),
        ('"just a string"', "parse"),
        ('{"time": 3}', "bad-event"),  # missing type
        ('{"type": "X"}', "bad-event"),  # missing time
        ('{"type": 7, "time": 3}', "bad-event"),
        ('{"type": "X", "time": "soon"}', "bad-event"),
        ('{"type": "X", "time": true}', "bad-event"),
        ('{"type": "X", "time": 3, "payload": [1]}', "bad-event"),
        ('{"type": "X", "time": 3, "seq": 1.5}', "bad-event"),
        ('{"type": "X", "time": 3, "seq": true}', "bad-event"),
        ('{"op": 42}', "bad-op"),
    ])
    def test_rejections_carry_codes(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            parse_line(line, resolver())
        assert excinfo.value.code == code
        reply = json.loads(excinfo.value.reply())
        assert reply["ok"] is False
        assert reply["error"] == code

    def test_round_trip_through_encode(self):
        resolve = resolver()
        original = parse_line(json.dumps({
            "type": "DiffReading",
            "time": 4,
            "payload": {"value": 9, "sec": 4, "zone": 1},
        }), resolve).event
        again = parse_line(encode_event(original), resolve).event
        assert event_row(again) == event_row(original)


class TestLineReader:
    def pair(self, **kwargs):
        left, right = socket.socketpair()
        return left, LineReader(right, **kwargs)

    def test_reads_lines_across_chunks(self):
        left, reader = self.pair()
        left.sendall(b"alpha\nbe")
        assert reader.readline() == "alpha"
        left.sendall(b"ta\n")
        assert reader.readline() == "beta"
        left.close()
        assert reader.readline() is None

    def test_final_unterminated_line(self):
        left, reader = self.pair()
        left.sendall(b"tail without newline")
        left.close()
        assert reader.readline() == "tail without newline"
        assert reader.readline() is None

    def test_oversized_line_is_rejected_and_resyncs(self):
        left, reader = self.pair(max_line_bytes=16)
        left.sendall(b"x" * 100 + b"\nok\n")
        with pytest.raises(LineTooLong):
            reader.readline()
        assert reader.readline() == "ok"

    def test_oversized_line_is_never_buffered_whole(self):
        left, reader = self.pair(max_line_bytes=16)
        left.sendall(b"y" * 4096)  # no newline yet
        with pytest.raises(LineTooLong):
            reader.readline()
        assert len(reader._buffer) <= 4096  # discarded as read, not grown
        left.sendall(b"more junk\nclean\n")
        assert reader.readline() == "clean"

    def test_bytes_are_counted(self):
        counted = []
        left, reader = self.pair(on_bytes=counted.append)
        left.sendall(b"one\ntwo\n")
        assert reader.readline() == "one"
        assert reader.readline() == "two"
        assert sum(counted) == len(b"one\ntwo\n")

    def test_rejects_nonpositive_limit(self):
        left, right = socket.socketpair()
        with pytest.raises(ValueError):
            LineReader(right, max_line_bytes=0)
        left.close()
        right.close()
