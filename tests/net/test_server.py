"""In-process tests for the TCP front end (:class:`NetServer`).

The contracts under test: N concurrent seq-tagged producers yield
emissions byte-identical to a one-shot ``run()``; a slow feeder stops
the server from reading (backpressure, not buffering); garbage and
oversized lines get structured replies without killing the connection;
idle producers are timed out; drain shutdown returns the full report.
"""

import json
import socket
import threading
import time

import pytest

from repro.difftest.scenarios import get_scenario
from repro.events.stream import EventStream
from repro.net.client import ServeClient, ServeClientError
from repro.net.protocol import ProtocolError, encode_event, scenario_types
from repro.net.server import NetServer, Resequencer
from repro.runtime import CaesarEngine, EngineService
from repro.runtime.service import _Op


def build_engine():
    scenario = get_scenario("threshold")
    return CaesarEngine(
        scenario.build_model(),
        partition_by=scenario.partition_by,
        retention=scenario.retention,
    )


def start_server(**server_kwargs):
    """An EngineService + NetServer pair wired for emission broadcast."""
    holder = {}
    service = EngineService(
        build_engine(),
        on_emit=lambda event: holder["server"].emit(event),
        queue_size=server_kwargs.pop("queue_size", 1024),
    )
    server = NetServer(
        service,
        types=scenario_types("threshold"),
        **server_kwargs,
    )
    holder["server"] = server
    host, port = server.start()
    return server, host, port


def one_shot_lines(events):
    report = build_engine().run(EventStream(list(events)))
    return [encode_event(e) for e in report.outputs]


class TestResequencer:
    def test_reassembles_total_order(self):
        scenario = get_scenario("threshold")
        events = scenario.make_events(7, 0.1)
        delivered = []
        seq = Resequencer(delivered.append)
        # push shards interleaved out of order: evens first, then odds
        for i in range(0, len(events), 2):
            seq.push(i, events[i])
        for i in range(1, len(events), 2):
            seq.push(i, events[i])
        assert delivered == list(events)
        assert seq.pending == 0

    def test_regressed_seq_is_rejected(self):
        delivered = []
        seq = Resequencer(delivered.append)
        scenario = get_scenario("threshold")
        events = scenario.make_events(7, 0.1)
        seq.push(0, events[0])
        with pytest.raises(ProtocolError):
            seq.push(0, events[1])
        assert delivered == [events[0]]

    def test_flush_releases_across_gaps(self):
        delivered = []
        seq = Resequencer(delivered.append)
        scenario = get_scenario("threshold")
        events = scenario.make_events(7, 0.1)
        seq.push(0, events[0])
        seq.push(5, events[5])  # 1-4 missing
        seq.push(3, events[3])
        assert delivered == [events[0]]
        seq.flush()
        assert delivered == [events[0], events[3], events[5]]


class TestMultiClientIngest:
    NUM_CLIENTS = 3

    def test_concurrent_seq_tagged_clients_match_one_shot_run(self):
        scenario = get_scenario("threshold")
        events = scenario.make_events(7, 0.3)
        expected = one_shot_lines(events)
        assert expected, "scenario produced no emissions to compare"

        server, host, port = start_server()
        subscriber = ServeClient(host, port)
        subscriber.subscribe()
        emitted = []
        collector = threading.Thread(
            target=lambda: emitted.extend(subscriber.emission_lines()),
            daemon=True,
        )
        collector.start()

        clients = [
            ServeClient(host, port) for _ in range(self.NUM_CLIENTS)
        ]

        def produce(client, offset):
            for i in range(offset, len(events), self.NUM_CLIENTS):
                client.send_event_obj(events[i], seq=i)
            client.close_write()

        threads = [
            threading.Thread(target=produce, args=(c, i), daemon=True)
            for i, c in enumerate(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive()

        report = server.shutdown(drain=True)
        collector.join(timeout=30)
        assert not collector.is_alive(), "subscriber saw no EOF on drain"
        for client in clients:
            client.close()
        subscriber.close()
        assert emitted == expected
        assert report.events_processed == len(events)
        assert server.sequencer.pending == 0

    def test_shutdown_is_idempotent(self):
        server, _, _ = start_server()
        report = server.shutdown(drain=True)
        assert report is server.shutdown(drain=True)


class TestBackpressure:
    def test_slow_feeder_stops_socket_reads(self):
        server, host, port = start_server(queue_size=1)
        service = server.service
        # park the feeder: the server can accept at most one event (into
        # the queue) before its connection thread blocks in submit
        entered = threading.Event()
        gate = threading.Event()

        def park():
            entered.set()
            gate.wait()

        service._queue.put(_Op(park))
        assert entered.wait(timeout=5)

        total = 5000
        client = ServeClient(host, port)

        def produce():
            for i in range(total):
                client.send_event("DiffReading", 0,
                                  {"value": 5, "sec": 0, "zone": 0})
            client.close_write()

        producer = threading.Thread(target=produce, daemon=True)
        producer.start()
        time.sleep(0.5)
        # accepted events stalled: one in the queue, one blocked in submit
        assert server._events_in.value <= 2
        gate.set()
        producer.join(timeout=60)
        assert not producer.is_alive()
        report = server.shutdown(drain=True)
        client.close()
        assert report.events_processed == total


class TestProtocolEnforcement:
    def send_and_reply(self, sock, reader, line):
        sock.sendall(line.encode("utf-8") + b"\n")
        return json.loads(reader.readline())

    def test_garbage_and_oversized_get_replies_connection_survives(self):
        server, host, port = start_server(max_line_bytes=200)
        sock = socket.create_connection((host, port), timeout=30)
        reader = sock.makefile("r", encoding="utf-8")

        reply = self.send_and_reply(sock, reader, "this is not json")
        assert reply == {
            "ok": False, "error": "parse",
            "message": reply["message"],
        }
        reply = self.send_and_reply(sock, reader, "x" * 500)
        assert reply["error"] == "oversized"
        reply = self.send_and_reply(sock, reader, '{"op": "noop"}')
        assert reply["error"] == "unknown-op"
        # the connection still works: a valid event then a ping round-trip
        sock.sendall(json.dumps({
            "type": "DiffReading", "time": 0,
            "payload": {"value": 5, "sec": 0, "zone": 0},
        }).encode("utf-8") + b"\n")
        reply = self.send_and_reply(sock, reader, '{"op": "ping"}')
        assert reply["ok"] is True
        assert server._events_in.value == 1
        assert server._rejected["parse"].value == 1
        assert server._rejected["oversized"].value == 1
        assert server._rejected["unknown-op"].value == 1
        sock.close()
        server.shutdown(drain=True)

    def test_idle_connection_times_out(self):
        server, host, port = start_server(read_timeout=0.3)
        sock = socket.create_connection((host, port), timeout=30)
        reader = sock.makefile("r", encoding="utf-8")
        reply = json.loads(reader.readline())  # sent after the idle bound
        assert reply["error"] == "timeout"
        assert reader.readline() == ""  # then the server closes
        sock.close()
        server.shutdown(drain=True)

    def test_regressed_seq_is_reported(self):
        server, host, port = start_server()
        client = ServeClient(host, port)
        client.send_event("DiffReading", 0,
                          {"value": 5, "sec": 0, "zone": 0}, seq=0)
        client.send_event("DiffReading", 1,
                          {"value": 5, "sec": 1, "zone": 0}, seq=0)
        with pytest.raises(ServeClientError, match="bad-op"):
            client.ping()  # the error reply arrives before the pong
        client.close()
        server.shutdown(drain=True)


class TestOps:
    def test_deploy_retire_round_trip(self):
        server, host, port = start_server()
        client = ServeClient(host, port)
        reply = client.deploy(
            "DERIVE Spike(r.value, r.sec) PATTERN DiffReading r "
            "WHERE r.value > 18 CONTEXT alert",
            name="spike",
        )
        assert reply["name"] == "spike"
        assert "watermark" in reply
        assert client.retire("spike")["ok"] is True
        with pytest.raises(ServeClientError, match="bad-op"):
            client.retire("never-deployed")
        client.close()
        server.shutdown(drain=True)

    def test_stop_op_requests_shutdown(self):
        server, host, port = start_server()
        client = ServeClient(host, port)
        assert client.stop_server()["ok"] is True
        assert server.stopped.wait(timeout=10)
        client.close()
        server.shutdown(drain=True)
